#include "graph/k_shortest.h"

#include <algorithm>
#include <queue>
#include <set>

#include "graph/shortest_path.h"

namespace dcn {

namespace {

/// Dijkstra restricted to a subgraph: edges in `banned_edges` and nodes
/// in `banned_nodes` are skipped.
std::optional<Path> restricted_shortest_path(
    const Graph& g, NodeId src, NodeId dst, const std::vector<double>& weights,
    const std::vector<bool>& banned_edges, const std::vector<bool>& banned_nodes) {
  std::vector<double> dist(static_cast<std::size_t>(g.num_nodes()), kInfiniteDistance);
  std::vector<EdgeId> parent(static_cast<std::size_t>(g.num_nodes()), kInvalidEdge);
  using Entry = std::pair<double, NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[static_cast<std::size_t>(src)] = 0.0;
  heap.emplace(0.0, src);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (EdgeId e : g.out_edges(u)) {
      if (banned_edges[static_cast<std::size_t>(e)]) continue;
      const NodeId v = g.edge(e).dst;
      if (banned_nodes[static_cast<std::size_t>(v)]) continue;
      const double cand = d + weights[static_cast<std::size_t>(e)];
      if (cand < dist[static_cast<std::size_t>(v)]) {
        dist[static_cast<std::size_t>(v)] = cand;
        parent[static_cast<std::size_t>(v)] = e;
        heap.emplace(cand, v);
      }
    }
  }
  if (dist[static_cast<std::size_t>(dst)] == kInfiniteDistance) return std::nullopt;
  std::vector<EdgeId> edges;
  NodeId at = dst;
  while (at != src) {
    const EdgeId e = parent[static_cast<std::size_t>(at)];
    edges.push_back(e);
    at = g.edge(e).src;
  }
  std::reverse(edges.begin(), edges.end());
  return Path{src, dst, std::move(edges)};
}

struct PathOrder {
  // Weight, then lexicographic edge sequence: a total deterministic order.
  bool operator()(const std::pair<double, Path>& a,
                  const std::pair<double, Path>& b) const {
    if (a.first != b.first) return a.first < b.first;
    return a.second.edges < b.second.edges;
  }
};

}  // namespace

std::vector<Path> yen_k_shortest_paths(const Graph& g, NodeId src, NodeId dst,
                                       const std::vector<double>& edge_weights,
                                       std::size_t k) {
  DCN_EXPECTS(g.valid_node(src));
  DCN_EXPECTS(g.valid_node(dst));
  DCN_EXPECTS(src != dst);
  DCN_EXPECTS(edge_weights.size() == static_cast<std::size_t>(g.num_edges()));

  std::vector<Path> result;
  if (k == 0) return result;

  auto first = dijkstra_shortest_path(g, src, dst, edge_weights);
  if (!first) return result;
  result.push_back(std::move(*first));

  std::set<std::pair<double, Path>, PathOrder> candidates;
  std::set<std::vector<EdgeId>> known;  // edge sequences already emitted/queued
  known.insert(result[0].edges);

  while (result.size() < k) {
    const Path& prev = result.back();
    const std::vector<NodeId> prev_nodes = path_nodes(g, prev);

    for (std::size_t spur_idx = 0; spur_idx < prev.edges.size(); ++spur_idx) {
      const NodeId spur_node = prev_nodes[spur_idx];
      // Root = prev[0 .. spur_idx).
      std::vector<EdgeId> root(prev.edges.begin(),
                               prev.edges.begin() + static_cast<std::ptrdiff_t>(spur_idx));

      std::vector<bool> banned_edges(static_cast<std::size_t>(g.num_edges()), false);
      std::vector<bool> banned_nodes(static_cast<std::size_t>(g.num_nodes()), false);

      // Ban the next edge of every already-found path sharing this root.
      for (const Path& p : result) {
        if (p.edges.size() > spur_idx &&
            std::equal(root.begin(), root.end(), p.edges.begin())) {
          banned_edges[static_cast<std::size_t>(p.edges[spur_idx])] = true;
        }
      }
      // Ban root nodes (except the spur node) to keep paths loopless.
      for (std::size_t i = 0; i < spur_idx; ++i) {
        banned_nodes[static_cast<std::size_t>(prev_nodes[i])] = true;
      }

      auto spur = restricted_shortest_path(g, spur_node, dst, edge_weights,
                                           banned_edges, banned_nodes);
      if (!spur) continue;

      Path total{src, dst, root};
      total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
      if (!known.insert(total.edges).second) continue;
      const double w = path_weight(total, edge_weights);
      candidates.emplace(w, std::move(total));
    }

    if (candidates.empty()) break;
    result.push_back(candidates.begin()->second);
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<Path> equal_cost_paths(const Graph& g, NodeId src, NodeId dst,
                                   std::size_t limit) {
  DCN_EXPECTS(src != dst);
  const std::vector<double> unit(static_cast<std::size_t>(g.num_edges()), 1.0);
  // Ask Yen for a few extra paths, then keep only those tied with the best.
  std::vector<Path> paths = yen_k_shortest_paths(g, src, dst, unit, limit + 8);
  if (paths.empty()) return paths;
  const std::size_t best = paths.front().length();
  std::erase_if(paths, [best](const Path& p) { return p.length() != best; });
  if (paths.size() > limit) paths.resize(limit);
  return paths;
}

}  // namespace dcn
