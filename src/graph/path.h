// A simple directed path through a Graph.
#pragma once

#include <iosfwd>
#include <vector>

#include "graph/graph.h"

namespace dcn {

/// A path is a sequence of edge ids whose endpoints chain from `src` to
/// `dst`. The hop count |P| of the paper is `length()`.
struct Path {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::vector<EdgeId> edges;

  [[nodiscard]] std::size_t length() const { return edges.size(); }
  [[nodiscard]] bool empty() const { return edges.empty(); }

  friend bool operator==(const Path&, const Path&) = default;
};

/// True when `path.edges` chains src -> dst in `g` and visits no node
/// twice (simple path). A zero-edge path is valid iff src == dst.
[[nodiscard]] bool is_valid_path(const Graph& g, const Path& path);

/// The ordered node sequence src, ..., dst visited by the path.
[[nodiscard]] std::vector<NodeId> path_nodes(const Graph& g, const Path& path);

/// Total weight of a path under per-edge weights.
[[nodiscard]] double path_weight(const Path& path,
                                 const std::vector<double>& edge_weights);

std::ostream& operator<<(std::ostream& os, const Path& path);

}  // namespace dcn
