#include "mcf/interval_decomposition.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dcn {

namespace {
// Breakpoints closer than this are merged: they would create degenerate
// intervals that blow up lambda without affecting the schedule.
constexpr double kMergeEps = 1e-9;
}  // namespace

double IntervalDecomposition::lambda() const {
  DCN_EXPECTS(!intervals.empty());
  double min_len = intervals.front().measure();
  for (const Interval& iv : intervals) min_len = std::min(min_len, iv.measure());
  return horizon().measure() / min_len;
}

double IntervalDecomposition::beta(std::size_t k) const {
  DCN_EXPECTS(k < intervals.size());
  return intervals[k].measure() / horizon().measure();
}

IntervalDecomposition decompose_intervals(const std::vector<Flow>& flows) {
  DCN_EXPECTS(!flows.empty());
  IntervalDecomposition out;

  std::vector<double> points;
  points.reserve(flows.size() * 2);
  for (const Flow& fl : flows) {
    points.push_back(fl.release);
    points.push_back(fl.deadline);
  }
  std::sort(points.begin(), points.end());
  for (double t : points) {
    if (out.breakpoints.empty() || t - out.breakpoints.back() > kMergeEps) {
      out.breakpoints.push_back(t);
    }
  }
  DCN_ENSURES(out.breakpoints.size() >= 2);

  out.intervals.reserve(out.breakpoints.size() - 1);
  for (std::size_t k = 1; k < out.breakpoints.size(); ++k) {
    out.intervals.emplace_back(out.breakpoints[k - 1], out.breakpoints[k]);
  }

  out.active.resize(out.intervals.size());
  for (std::size_t k = 0; k < out.intervals.size(); ++k) {
    const double mid = 0.5 * (out.intervals[k].lo + out.intervals[k].hi);
    for (const Flow& fl : flows) {
      if (fl.active_at(mid)) out.active[k].push_back(fl.id);
    }
  }
  return out;
}

}  // namespace dcn
