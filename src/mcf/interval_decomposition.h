// Interval decomposition of a flow set (Sec. V-A).
//
// T = {t_0 < t_1 < ... < t_K} collects all release times and deadlines;
// within each interval I_k = [t_{k-1}, t_k] the set of active flows is
// invariant, so the relaxed problem decomposes into one static F-MCF
// problem per interval. lambda = (t_K - t_0) / min_k |I_k| is the
// granularity parameter that enters the approximation ratio of
// Theorem 6.
#pragma once

#include <vector>

#include "common/interval.h"
#include "flow/flow.h"

namespace dcn {

struct IntervalDecomposition {
  std::vector<double> breakpoints;           // t_0 .. t_K
  std::vector<Interval> intervals;           // I_1 .. I_K (size K)
  std::vector<std::vector<FlowId>> active;   // flows with I_k inside their span

  [[nodiscard]] std::size_t num_intervals() const { return intervals.size(); }

  /// Horizon [t_0, t_K].
  [[nodiscard]] Interval horizon() const {
    DCN_EXPECTS(!breakpoints.empty());
    return {breakpoints.front(), breakpoints.back()};
  }

  /// lambda = (t_K - t_0) / min_k |I_k|.
  [[nodiscard]] double lambda() const;

  /// beta_k = |I_k| / (t_K - t_0).
  [[nodiscard]] double beta(std::size_t k) const;
};

/// Builds the decomposition. Coincident release/deadline values are
/// merged; every interval has positive length.
[[nodiscard]] IntervalDecomposition decompose_intervals(const std::vector<Flow>& flows);

}  // namespace dcn
