// The multi-interval fractional relaxation of DCFSR (Algorithm 2,
// steps 1-7) and the lower bound LB used throughout the paper's
// evaluation.
//
// Relaxations applied (Sec. V-A): each active flow is routed as a fluid
// of rate D_i (its density), may split over multiple paths, and links
// may switch on and off freely. The resulting problem decomposes into
// one convex-cost F-MCF per interval, solved by Frank-Wolfe against the
// convex envelope of the power function f. Per interval, the fractional
// per-commodity solution y*_{i,e}(k) is decomposed into weighted paths
// (Raghavan-Tompson); the per-interval weights are then aggregated into
//
//     wbar_P = sum_k w_P(k) * |I_k| / (d_i - r_i),
//
// a probability distribution over each flow's candidate paths — the
// input to the randomized rounding of Algorithm 2.
//
// The summed interval optima give the LB curve of Fig. 2:
//     LB = sum_k |I_k| * sum_e env(x*_e(k))   <=   Phi_f(OPT),
// since env(x) <= sigma * 1[x>0] + mu x^alpha pointwise and the
// relaxation only removes constraints.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.h"
#include "graph/flow_decomposition.h"
#include "graph/graph.h"
#include "graph/shortest_path.h"
#include "graph/sparse_flow.h"
#include "mcf/interval_decomposition.h"
#include "opt/convex_mcf.h"
#include "power/power_model.h"

namespace dcn {

/// Candidate routing paths of one flow with aggregated weights wbar
/// (normalized to sum to 1).
struct FlowCandidates {
  std::vector<WeightedPath> paths;
};

struct RelaxationOptions {
  /// Frank-Wolfe knobs, including the step rule. Since v2 the default
  /// is kPairwise everywhere: it repairs warm re-solves (each
  /// interval's warm rows — the previous interval's solution, or the
  /// caller's carried rows — seed the per-commodity active sets the
  /// sweeps move mass between) *and* certifies cold solves past the
  /// classic rule's last-mile stall. kClassic remains selectable for
  /// the v1 trajectory; kAwayStep is the textbook away-step variant.
  /// See FrankWolfeStepRule.
  FrankWolfeOptions frank_wolfe;
  /// Tolerance passed to the path decomposition.
  double decomposition_tolerance = 1e-9;
};

struct FractionalRelaxation {
  IntervalDecomposition decomposition;
  /// LB: the fractional optimum's energy over the whole horizon.
  double lower_bound_energy = 0.0;
  /// Per flow: candidate paths and rounding probabilities wbar.
  std::vector<FlowCandidates> candidates;
  /// Mean final Frank-Wolfe relative gap across intervals (diagnostic).
  double mean_relative_gap = 0.0;
  /// Sum of Frank-Wolfe iterations over all interval solves (the cost
  /// driver; warm starts show up here).
  std::int64_t total_fw_iterations = 0;
  /// Per-phase Frank-Wolfe work summed over all interval solves, plus
  /// the relaxation's own warm-start routing sweeps. The counters are
  /// deterministic (safe to byte-compare across thread counts); the
  /// seconds are wall time and must stay out of canonical output.
  FrankWolfeStats fw_stats;
  /// Per flow: its sparse commodity flow from the last interval it was
  /// active in — the warm-start seed for a subsequent related solve
  /// (the online scheduler threads these across re-solves).
  std::vector<SparseEdgeFlow> final_flow;
  /// Per flow: the path-atom decomposition of final_flow from the same
  /// last interval — populated only when the solve stepped with an
  /// atom rule (pairwise or away-step; empty sets under kClassic).
  /// Feeding these back via
  /// `warm_atoms_by_flow` lets the next re-solve seed its active sets
  /// directly instead of re-running Raghavan-Tompson on the warm rows,
  /// and preserves atom identity across the online scheduler's events.
  std::vector<AtomSet> final_atoms;
};

/// Reusable scratch for solve_relaxation: the Frank-Wolfe workspace,
/// Dijkstra/decomposition state, and the adjacency snapshot. One
/// workspace held across a sequence of related solves (the online
/// scheduler's per-arrival re-solves) eliminates all O(V)/O(E)
/// allocation after the first call. Treat as opaque.
struct RelaxationWorkspace {
  ConvexMcfWorkspace mcf;
  DijkstraWorkspace shortest_path;
  FlowDecompositionWorkspace decomposition;
  CsrAdjacency adjacency;
};

/// Solves the relaxation interval by interval (streaming; consecutive
/// intervals warm-start from each other).
///
/// `workspace`, when non-null, is reused across calls. `warm_by_flow`,
/// when non-null, must have one sparse row per flow; a non-empty row
/// seeds that flow's *first* interval solve instead of the cheapest-path
/// cold start, and must route exactly the flow's density from src to dst
/// (rows from a previous solve_relaxation's `final_flow` qualify as long
/// as the flow's density is unchanged — densities are invariant under
/// residual re-solves, see src/online). Empty rows fall back to the
/// cold start.
///
/// `warm_atoms_by_flow`, when non-null (one atom set per flow; atom
/// step rules only), carries each flow's active-set decomposition from a
/// previous related solve (`final_atoms`): a non-empty set seeds the
/// flow's first interval solve directly — no Raghavan-Tompson pass over
/// its warm row — and must decompose exactly the flow's density. Empty
/// sets fall back to decomposing the warm row.
[[nodiscard]] FractionalRelaxation solve_relaxation(
    const Graph& g, const std::vector<Flow>& flows, const PowerModel& model,
    const RelaxationOptions& options = {}, RelaxationWorkspace* workspace = nullptr,
    const std::vector<SparseEdgeFlow>* warm_by_flow = nullptr,
    const std::vector<AtomSet>* warm_atoms_by_flow = nullptr);

}  // namespace dcn
