#include "mcf/relaxation.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/contracts.h"
#include "graph/shortest_path.h"

namespace dcn {

FractionalRelaxation solve_relaxation(const Graph& g, const std::vector<Flow>& flows,
                                      const PowerModel& model,
                                      const RelaxationOptions& options) {
  validate_flows(g, flows);
  FractionalRelaxation out;
  out.decomposition = decompose_intervals(flows);
  const IntervalDecomposition& dec = out.decomposition;

  // Per flow: candidate paths keyed by edge sequence, accumulating wbar.
  std::vector<std::map<std::vector<EdgeId>, double>> accum(flows.size());

  // Warm-start bookkeeping: per flow, its fractional edge flow from the
  // previous interval it was active in.
  std::vector<std::vector<double>> prev_flow_by_flow(flows.size());

  double gap_sum = 0.0;
  std::size_t solved_intervals = 0;

  for (std::size_t k = 0; k < dec.num_intervals(); ++k) {
    const std::vector<FlowId>& active = dec.active[k];
    if (active.empty()) continue;

    ConvexMcfProblem problem;
    problem.graph = &g;
    problem.cost = [&model](double x) { return model.envelope(x); };
    problem.cost_derivative = [&model](double x) {
      return model.envelope_derivative(x);
    };
    problem.commodities.reserve(active.size());
    for (FlowId fid : active) {
      const Flow& fl = flows[static_cast<std::size_t>(fid)];
      problem.commodities.push_back({fl.src, fl.dst, fl.density()});
    }

    // Warm start: reuse each flow's previous fractional flow; new flows
    // start on the cheapest path under the empty-network marginal cost.
    std::vector<std::vector<double>> warm;
    warm.reserve(active.size());
    bool any_warm = false;
    const auto num_edges = static_cast<std::size_t>(g.num_edges());
    for (std::size_t c = 0; c < active.size(); ++c) {
      const auto fid = static_cast<std::size_t>(active[c]);
      if (!prev_flow_by_flow[fid].empty()) {
        warm.push_back(prev_flow_by_flow[fid]);
        any_warm = true;
      } else {
        std::vector<double> w0(num_edges,
                               std::max(model.envelope_derivative(0.0), 1e-9));
        const auto sp = dijkstra_shortest_path(
            g, problem.commodities[c].src, problem.commodities[c].dst, w0);
        DCN_ENSURES(sp.has_value());
        std::vector<double> row(num_edges, 0.0);
        for (EdgeId e : sp->edges) {
          row[static_cast<std::size_t>(e)] = problem.commodities[c].demand;
        }
        warm.push_back(std::move(row));
      }
    }

    const ConvexMcfSolution sol = solve_convex_mcf(
        problem, options.frank_wolfe, any_warm ? &warm : nullptr);

    out.lower_bound_energy += sol.cost * dec.intervals[k].measure();
    gap_sum += sol.relative_gap;
    ++solved_intervals;

    // Raghavan-Tompson extraction per active flow, then aggregate wbar.
    for (std::size_t c = 0; c < active.size(); ++c) {
      const auto fid = static_cast<std::size_t>(active[c]);
      const Flow& fl = flows[fid];
      const std::vector<WeightedPath> paths =
          decompose_flow(g, fl.src, fl.dst, sol.commodity_flow[c], fl.density(),
                         options.decomposition_tolerance);
      const double interval_share =
          dec.intervals[k].measure() / (fl.deadline - fl.release);
      for (const WeightedPath& wp : paths) {
        accum[fid][wp.path.edges] += wp.weight * interval_share;
      }
      prev_flow_by_flow[fid] = sol.commodity_flow[c];
    }
  }

  out.mean_relative_gap =
      solved_intervals > 0 ? gap_sum / static_cast<double>(solved_intervals) : 0.0;

  // Materialize candidates with normalized wbar.
  out.candidates.resize(flows.size());
  for (std::size_t i = 0; i < flows.size(); ++i) {
    DCN_ENSURES(!accum[i].empty());
    double total = 0.0;
    for (const auto& [edges, w] : accum[i]) total += w;
    DCN_ENSURES(total > 0.0);
    for (auto& [edges, w] : accum[i]) {
      out.candidates[i].paths.push_back(
          {Path{flows[i].src, flows[i].dst, edges}, w / total});
    }
  }
  return out;
}

}  // namespace dcn
