#include "mcf/relaxation.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <utility>

#include "common/contracts.h"
#include "graph/shortest_path.h"

namespace dcn {

namespace {

/// FNV-1a over the edge ids of a candidate path (the accumulator key).
struct EdgeSeqHash {
  std::size_t operator()(const std::vector<EdgeId>& edges) const noexcept {
    std::size_t h = 14695981039346656037ull;
    for (const EdgeId e : edges) {
      h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(e));
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// wbar accumulator of one flow: hashed path -> aggregated weight
/// (replaces the seed's std::map keyed by the edge vector — hashed
/// lookups avoid the O(path length) lexicographic compares per probe).
using PathAccumulator =
    std::unordered_map<std::vector<EdgeId>, double, EdgeSeqHash>;

}  // namespace

FractionalRelaxation solve_relaxation(const Graph& g, const std::vector<Flow>& flows,
                                      const PowerModel& model,
                                      const RelaxationOptions& options,
                                      RelaxationWorkspace* workspace,
                                      const std::vector<SparseEdgeFlow>* warm_by_flow,
                                      const std::vector<AtomSet>* warm_atoms_by_flow) {
  validate_flows(g, flows);
  FractionalRelaxation out;
  out.decomposition = decompose_intervals(flows);
  const IntervalDecomposition& dec = out.decomposition;

  // Per flow: candidate paths keyed by edge sequence, accumulating wbar.
  std::vector<PathAccumulator> accum(flows.size());

  // Warm-start bookkeeping: per flow, its sparse fractional edge flow
  // from the previous interval it was active in; seeded from the caller
  // when it carries rows from a previous related solve.
  std::vector<SparseEdgeFlow> prev_flow_by_flow(flows.size());
  if (warm_by_flow != nullptr) {
    DCN_EXPECTS(warm_by_flow->size() == flows.size());
    prev_flow_by_flow = *warm_by_flow;
  }
  // Atom carry-over (atom step rules): per flow, the path-atom
  // decomposition matching prev_flow_by_flow, threaded across intervals
  // (and, via the caller, across whole re-solves) so each interval
  // solve seeds its active sets without re-decomposing the warm rows.
  const bool atomic =
      options.frank_wolfe.step_rule != FrankWolfeStepRule::kClassic;
  std::vector<AtomSet> prev_atoms_by_flow(flows.size());
  if (atomic && warm_atoms_by_flow != nullptr) {
    DCN_EXPECTS(warm_atoms_by_flow->size() == flows.size());
    prev_atoms_by_flow = *warm_atoms_by_flow;
  }
  std::vector<AtomSet> interval_atoms;

  // All O(V)/O(E) scratch lives in workspaces reused across intervals —
  // and, when the caller passes one, across whole solves.
  RelaxationWorkspace local_workspace;
  RelaxationWorkspace& ws = workspace != nullptr ? *workspace : local_workspace;
  ConvexMcfWorkspace& mcf_workspace = ws.mcf;
  DijkstraWorkspace& sp_workspace = ws.shortest_path;
  FlowDecompositionWorkspace& decomposition_workspace = ws.decomposition;
  CsrAdjacency& adjacency = ws.adjacency;
  adjacency.build(g);

  // The empty-network marginal weights are identical for every interval
  // and every new flow: hoist them out of the loops.
  const auto num_edges = static_cast<std::size_t>(g.num_edges());
  const double w_zero = std::max(model.envelope_derivative(0.0), 1e-9);
  const std::vector<double> w0(num_edges, w_zero);

  // Analytic description of the envelope handed to the solver's dense
  // repricing fast path; reproduces the model.envelope* callbacks bit
  // for bit (see EnvelopeCostSpec), so attaching it cannot change any
  // trajectory — it only removes the per-edge std::function calls.
  EnvelopeCostSpec spec;
  spec.sigma = model.sigma();
  spec.mu = model.mu();
  spec.alpha = model.alpha();
  spec.r_hat = model.r_hat();
  spec.env_slope = model.envelope_derivative(0.0);

  // Scratch for grouping an interval's new flows by source.
  std::vector<std::pair<NodeId, std::size_t>> new_by_source;
  std::vector<NodeId> group_targets;
  Path path_scratch;
  std::vector<double> loaded_weights;

  double gap_sum = 0.0;
  std::size_t solved_intervals = 0;

  for (std::size_t k = 0; k < dec.num_intervals(); ++k) {
    const std::vector<FlowId>& active = dec.active[k];
    if (active.empty()) continue;

    ConvexMcfProblem problem;
    problem.graph = &g;
    problem.cost = [&model](double x) { return model.envelope(x); };
    problem.cost_derivative = [&model](double x) {
      return model.envelope_derivative(x);
    };
    problem.envelope = spec;
    problem.commodities.reserve(active.size());
    for (FlowId fid : active) {
      const Flow& fl = flows[static_cast<std::size_t>(fid)];
      problem.commodities.push_back({fl.src, fl.dst, fl.density()});
    }

    // Warm start: reuse each flow's previous sparse flow (under the
    // pairwise step rule the solver decomposes these rows into the
    // path atoms that seed its active sets); new flows start on the
    // cheapest path under the empty-network marginal cost,
    // batched so new flows sharing a source share one Dijkstra sweep.
    // The rows are always passed to the solver — for an all-new
    // interval they equal the solver's own cold-start point, so handing
    // them over (instead of letting it recompute) skips a full round of
    // oracle sweeps with value-identical results.
    std::vector<SparseEdgeFlow> warm(active.size());
    new_by_source.clear();
    for (std::size_t c = 0; c < active.size(); ++c) {
      const auto fid = static_cast<std::size_t>(active[c]);
      if (!prev_flow_by_flow[fid].empty()) {
        warm[c] = prev_flow_by_flow[fid];
      } else {
        new_by_source.emplace_back(problem.commodities[c].src, c);
      }
    }
    std::sort(new_by_source.begin(), new_by_source.end());

    // Initialization weights for the new flows. In a caller-warm-started
    // re-solve (the online scheduler's per-arrival path), route arrivals
    // against the *carried load's* marginal costs rather than the empty
    // network: a Frank-Wolfe step is a joint convex combination across
    // all commodities, so it is very slow at re-routing one badly
    // initialized arrival away from links the warm flows already
    // occupy — better to never put it there. With no carried rows the
    // sum below is zero and these weights degenerate to w0 exactly, so
    // cold behavior (and the offline algorithm) is bit-identical.
    const std::vector<double>* init_weights = &w0;
    if (warm_by_flow != nullptr && !new_by_source.empty()) {
      loaded_weights.assign(num_edges, 0.0);
      for (const SparseEdgeFlow& row : warm) {
        for (const auto& [e, v] : row) {
          loaded_weights[static_cast<std::size_t>(e)] += v;
        }
      }
      for (double& w : loaded_weights) {
        w = std::max(spec.derivative(w), 1e-9);
      }
      init_weights = &loaded_weights;
    }

    for (std::size_t lo = 0; lo < new_by_source.size();) {
      ++out.fw_stats.oracle_sweeps;
      std::size_t hi = lo;
      const NodeId src = new_by_source[lo].first;
      group_targets.clear();
      while (hi < new_by_source.size() && new_by_source[hi].first == src) {
        group_targets.push_back(
            problem.commodities[new_by_source[hi].second].dst);
        ++hi;
      }
      dijkstra_sweep(adjacency, src, *init_weights, group_targets, sp_workspace);
      for (std::size_t i = lo; i < hi; ++i) {
        const std::size_t c = new_by_source[i].second;
        const bool reached = workspace_path_into(
            g, sp_workspace, src, problem.commodities[c].dst, path_scratch);
        DCN_ENSURES(reached);
        for (const EdgeId e : path_scratch.edges) {
          warm[c].emplace_back(e, problem.commodities[c].demand);
        }
        // Canonical (edge-ascending) order keeps the solver's float
        // accumulation order independent of how the row was produced.
        std::sort(warm[c].begin(), warm[c].end());
      }
      lo = hi;
    }

    // Carried atoms for this interval's commodities (atom rules only):
    // flows active in the previous interval hand their active sets
    // straight to the solver.
    const std::vector<AtomSet>* atoms_in = nullptr;
    if (atomic) {
      interval_atoms.assign(active.size(), {});
      for (std::size_t c = 0; c < active.size(); ++c) {
        const auto fid = static_cast<std::size_t>(active[c]);
        interval_atoms[c] = std::move(prev_atoms_by_flow[fid]);
      }
      atoms_in = &interval_atoms;
    }

    ConvexMcfSolution sol = solve_convex_mcf(
        problem, options.frank_wolfe, &warm, &mcf_workspace, atoms_in);

    out.lower_bound_energy += sol.cost * dec.intervals[k].measure();
    gap_sum += sol.relative_gap;
    out.total_fw_iterations += sol.iterations;
    out.fw_stats += sol.stats;
    ++solved_intervals;

    // Aggregate wbar per active flow. An atom-rule solve already carries
    // the path decomposition — its final active sets — so the atoms are
    // read off directly (normalized over the set, matching the
    // decomposition's sum-to-1 contract); a classic solve runs the
    // Raghavan-Tompson extraction as before, keeping the offline
    // trajectory byte-identical.
    for (std::size_t c = 0; c < active.size(); ++c) {
      const auto fid = static_cast<std::size_t>(active[c]);
      const Flow& fl = flows[fid];
      const double interval_share =
          dec.intervals[k].measure() / (fl.deadline - fl.release);
      if (atomic && !sol.commodity_atoms[c].empty()) {
        double total_weight = 0.0;
        for (const PathAtom& atom : sol.commodity_atoms[c]) {
          total_weight += atom.weight;
        }
        DCN_ENSURES(total_weight > 0.0);
        for (const PathAtom& atom : sol.commodity_atoms[c]) {
          accum[fid][atom.edges] += atom.weight / total_weight * interval_share;
        }
        prev_atoms_by_flow[fid] = std::move(sol.commodity_atoms[c]);
      } else {
        const std::vector<WeightedPath> paths = decompose_flow_sparse(
            g, fl.src, fl.dst, sol.commodity_flow[c], fl.density(),
            options.decomposition_tolerance, &decomposition_workspace);
        for (const WeightedPath& wp : paths) {
          accum[fid][wp.path.edges] += wp.weight * interval_share;
        }
      }
      prev_flow_by_flow[fid] = sol.commodity_flow[c];
    }
  }

  out.mean_relative_gap =
      solved_intervals > 0 ? gap_sum / static_cast<double>(solved_intervals) : 0.0;
  out.final_flow = std::move(prev_flow_by_flow);
  out.final_atoms = std::move(prev_atoms_by_flow);

  // Materialize candidates with normalized wbar. The hashed accumulator
  // is unordered, so sort candidates lexicographically by edge sequence
  // — the exact order the seed's std::map iteration produced.
  out.candidates.resize(flows.size());
  std::vector<std::pair<std::vector<EdgeId>, double>> sorted;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    DCN_ENSURES(!accum[i].empty());
    sorted.clear();
    sorted.reserve(accum[i].size());
    // dcn-lint: allow(unordered-iter) drain-then-sort: every entry lands in `sorted` and is lexicographically ordered below before any float is accumulated, so hash order cannot reach the candidates
    for (auto& entry : accum[i]) sorted.push_back(std::move(entry));
    std::sort(sorted.begin(), sorted.end());
    double total = 0.0;
    for (const auto& [edges, w] : sorted) total += w;
    DCN_ENSURES(total > 0.0);
    out.candidates[i].paths.reserve(sorted.size());
    for (auto& [edges, w] : sorted) {
      out.candidates[i].paths.push_back(
          {Path{flows[i].src, flows[i].dst, std::move(edges)}, w / total});
    }
  }
  return out;
}

}  // namespace dcn
