#include "speedscale/yds.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/contracts.h"
#include "schedule/edf.h"

namespace dcn {

double SsSchedule::energy(double alpha) const {
  double total = 0.0;
  for (const SsAssignment& a : jobs) {
    for (const Interval& iv : a.segments) {
      total += std::pow(a.speed, alpha) * iv.measure();
    }
  }
  return total;
}

namespace {

struct Candidate {
  double intensity = -1.0;
  Interval interval;
  std::vector<std::size_t> contained;  // indices into the pending job list
};

}  // namespace

SsSchedule yds_schedule(const std::vector<SsJob>& jobs,
                        const IntervalSet& availability) {
  for (const SsJob& job : jobs) {
    DCN_EXPECTS(job.work > 0.0);
    DCN_EXPECTS(!job.span.empty());
  }

  SsSchedule schedule;
  schedule.jobs.resize(jobs.size());

  IntervalSet avail = availability;
  std::vector<bool> done(jobs.size(), false);
  std::size_t remaining = jobs.size();

  while (remaining > 0) {
    // Clip every pending job's span to the current availability.
    std::vector<std::size_t> pending;
    std::vector<IntervalSet> allowed;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (done[i]) continue;
      IntervalSet a = avail.intersect(jobs[i].span);
      if (a.empty()) {
        throw InfeasibleError("yds: job " + std::to_string(jobs[i].id) +
                              " has no available time left in its span");
      }
      pending.push_back(i);
      allowed.push_back(std::move(a));
    }

    // Critical interval: the minimal enclosing interval of some subset
    // of clipped spans; it suffices to scan all (lo, hi) pairs taken
    // from the clipped spans' extremes.
    Candidate best;
    for (std::size_t ai = 0; ai < pending.size(); ++ai) {
      const double a = allowed[ai].min();
      for (std::size_t bi = 0; bi < pending.size(); ++bi) {
        const double b = allowed[bi].max();
        if (b <= a) continue;
        const Interval window{a, b};
        double work = 0.0;
        std::vector<std::size_t> contained;
        for (std::size_t j = 0; j < pending.size(); ++j) {
          if (allowed[j].min() >= a && allowed[j].max() <= b) {
            work += jobs[pending[j]].work;
            contained.push_back(j);
          }
        }
        if (contained.empty()) continue;
        const double denom = avail.measure_within(window);
        DCN_ENSURES(denom > 0.0);
        const double intensity = work / denom;
        // Deterministic tie-breaking: higher intensity, then earlier
        // start, then wider interval.
        if (intensity > best.intensity + 1e-15 ||
            (std::fabs(intensity - best.intensity) <= 1e-15 &&
             (window.lo < best.interval.lo ||
              (window.lo == best.interval.lo && window.hi > best.interval.hi)))) {
          best = {intensity, window, std::move(contained)};
        }
      }
    }
    DCN_ENSURES(best.intensity > 0.0);

    // Schedule the critical set with EDF at the critical speed.
    std::vector<EdfJob> edf_jobs;
    edf_jobs.reserve(best.contained.size());
    for (std::size_t j : best.contained) {
      const SsJob& job = jobs[pending[j]];
      edf_jobs.push_back(EdfJob{job.id, job.span.hi, job.work / best.intensity,
                                allowed[j]});
    }
    const EdfResult edf = preemptive_edf(edf_jobs);
    if (!edf.feasible) {
      // YDS theory guarantees feasibility at the critical speed; tripping
      // this indicates numerical collapse of an availability fragment.
      throw InfeasibleError("yds: EDF failed inside a critical interval");
    }

    for (std::size_t k = 0; k < best.contained.size(); ++k) {
      const std::size_t job_index = pending[best.contained[k]];
      SsAssignment& out = schedule.jobs[job_index];
      out.speed = best.intensity;
      out.segments = edf.segments[k];
      done[job_index] = true;
      --remaining;
    }
    // The machine is saturated across the whole critical window.
    avail.subtract(best.interval);
  }
  return schedule;
}

SsSchedule yds_schedule(const std::vector<SsJob>& jobs) {
  DCN_EXPECTS(!jobs.empty());
  double lo = jobs.front().span.lo;
  double hi = jobs.front().span.hi;
  for (const SsJob& job : jobs) {
    lo = std::min(lo, job.span.lo);
    hi = std::max(hi, job.span.hi);
  }
  return yds_schedule(jobs, IntervalSet{Interval{lo, hi}});
}

}  // namespace dcn
