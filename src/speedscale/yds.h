// YDS optimal speed scaling on a single processor (Yao, Demers,
// Shenker, FOCS'95).
//
// Jobs with work w'_i and spans [r_i, d_i] run on one speed-scalable
// processor with power s^alpha. The minimum-energy schedule repeatedly
// finds the maximum-intensity ("critical") interval
//
//   delta(I) = sum_{jobs confined to I} w'_i / available-time(I),
//
// runs its jobs there at speed delta with EDF, removes them, and marks
// the interval unavailable. Example 1 / Theorem 1 of the paper reduce
// DCFS to exactly this computation with virtual weights, so this kernel
// is both the reference implementation for tests and the engine behind
// Most-Critical-First.
//
// Generalization used here: job containment is evaluated on *available*
// time (the classic "collapse the critical interval" operation is
// realized by subtracting busy time and clipping spans to availability),
// and candidate critical intervals are the minimal enclosing intervals
// of every pair of clipped spans — exact, and robust to availability
// fragments whose endpoints are not releases/deadlines.
#pragma once

#include <cstdint>
#include <vector>

#include "common/errors.h"
#include "common/interval.h"

namespace dcn {

/// One speed-scaling job.
struct SsJob {
  std::int32_t id = -1;
  double work = 0.0;  // w'_i > 0
  Interval span;      // [r_i, d_i]
};

/// The schedule chosen for one job: a single speed (Lemma 1) and the
/// execution segments within the job's span.
struct SsAssignment {
  double speed = 0.0;
  std::vector<Interval> segments;

  [[nodiscard]] double execution_time() const {
    double total = 0.0;
    for (const Interval& iv : segments) total += iv.measure();
    return total;
  }
};

/// Complete YDS schedule, aligned with the input job vector.
struct SsSchedule {
  std::vector<SsAssignment> jobs;

  /// Total energy integral s(t)^alpha dt = sum_i w_i * speed_i^(alpha-1).
  [[nodiscard]] double energy(double alpha) const;
};

/// Computes the minimum-energy schedule. `availability` is the machine
/// time usable at all (pass the whole horizon for the classic problem).
/// Throws InfeasibleError when some job has no available time in its
/// span.
[[nodiscard]] SsSchedule yds_schedule(const std::vector<SsJob>& jobs,
                                      const IntervalSet& availability);

/// Convenience overload: fully available horizon [min release, max deadline].
[[nodiscard]] SsSchedule yds_schedule(const std::vector<SsJob>& jobs);

}  // namespace dcn
