#include "schedule/edf.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dcn {

namespace {
// Work smaller than this (in machine-time units) counts as done; EDF
// slice arithmetic accumulates float error proportional to the number
// of preemptions.
constexpr double kWorkEps = 1e-9;
}  // namespace

EdfResult preemptive_edf(const std::vector<EdfJob>& jobs) {
  EdfResult result;
  result.segments.resize(jobs.size());
  result.remaining.resize(jobs.size());

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    DCN_EXPECTS(jobs[i].processing > 0.0);
    result.remaining[i] = jobs[i].processing;
  }

  // Event points: every boundary of every allowed interval. Between two
  // consecutive events, the set of admissible jobs is constant.
  std::vector<double> events;
  for (const EdfJob& job : jobs) {
    for (const Interval& iv : job.allowed.intervals()) {
      events.push_back(iv.lo);
      events.push_back(iv.hi);
    }
  }
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());

  for (std::size_t k = 0; k + 1 < events.size(); ++k) {
    double t = events[k];
    const double slice_end = events[k + 1];
    // Within the slice, repeatedly run the earliest-deadline admissible
    // job until the slice is exhausted or nothing is runnable.
    while (t < slice_end) {
      std::size_t pick = jobs.size();
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (result.remaining[i] <= kWorkEps) continue;
        if (!jobs[i].allowed.contains(t)) continue;
        if (pick == jobs.size() || jobs[i].deadline < jobs[pick].deadline ||
            (jobs[i].deadline == jobs[pick].deadline && jobs[i].id < jobs[pick].id)) {
          pick = i;
        }
      }
      if (pick == jobs.size()) break;  // idle for the rest of the slice
      const double run = std::min(slice_end - t, result.remaining[pick]);
      auto& segs = result.segments[pick];
      if (!segs.empty() && std::fabs(segs.back().hi - t) < kWorkEps) {
        segs.back().hi = t + run;  // extend a contiguous segment
      } else {
        segs.push_back({t, t + run});
      }
      result.remaining[pick] -= run;
      t += run;
    }
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (result.remaining[i] > kWorkEps * std::max(1.0, jobs[i].processing)) {
      result.feasible = false;
      result.unfinished.push_back(jobs[i].id);
    } else {
      result.remaining[i] = 0.0;
    }
  }
  return result;
}

}  // namespace dcn
