// Preemptive Earliest-Deadline-First on a single resource with
// per-job allowed-time sets.
//
// Both Most-Critical-First (Algorithm 1, step 3) and the YDS kernel
// schedule the jobs of a critical interval with EDF. Machine
// availability gaps (times already committed to earlier critical
// intervals) are expressed through each job's `allowed` set: the job may
// only execute inside it. The classic optimality of preemptive EDF
// holds per availability slice, which is how the sweep below works.
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.h"

namespace dcn {

/// One job for the EDF machine.
struct EdfJob {
  std::int32_t id = -1;
  double deadline = 0.0;     // tie-break key and EDF priority
  double processing = 0.0;   // machine time required (> 0)
  IntervalSet allowed;       // times the job may run (already clipped to
                             // [release, deadline] and availability)
};

/// Execution segments chosen for each job (indexed like the input).
struct EdfResult {
  bool feasible = true;
  std::vector<std::vector<Interval>> segments;
  std::vector<std::int32_t> unfinished;  // ids of jobs with remaining work

  /// Remaining work per job (0 when fully scheduled).
  std::vector<double> remaining;
};

/// Runs preemptive EDF. At any instant the runnable job (allowed set
/// contains the instant, work remaining) with the earliest deadline
/// executes; ties break toward the smaller job id, deterministically.
/// Feasible iff every job finishes inside its allowed set.
[[nodiscard]] EdfResult preemptive_edf(const std::vector<EdfJob>& jobs);

}  // namespace dcn
