// Schedule representation, link timelines, energy (Eq. 5/6), and
// feasibility checking.
//
// A Schedule implements the paper's S = {(s_i(t), P_i)}: per flow, one
// path and a piecewise-constant rate function represented as disjoint
// (interval, rate) segments. While a flow transmits, every link on its
// path carries its rate (virtual-circuit model, Sec. III-A); link rates
// are the sums over flows currently transmitting on them.
#pragma once

#include <string>
#include <vector>

#include "common/interval.h"
#include "common/piecewise.h"
#include "flow/flow.h"
#include "graph/path.h"
#include "power/power_model.h"

namespace dcn {

/// One constant-rate transmission segment of a flow.
struct RateSegment {
  Interval interval;
  double rate = 0.0;

  [[nodiscard]] double volume() const { return rate * interval.measure(); }

  friend bool operator==(const RateSegment&, const RateSegment&) = default;
};

/// The path and rate function assigned to one flow.
struct FlowSchedule {
  Path path;
  std::vector<RateSegment> segments;

  /// Total data moved by the segments.
  [[nodiscard]] double transmitted_volume() const;

  /// Total time with positive rate.
  [[nodiscard]] double transmission_time() const;
};

/// A complete schedule: entry i belongs to flows[i].
struct Schedule {
  std::vector<FlowSchedule> flows;
};

/// Per-edge transmission-rate timelines x_e(t) induced by a schedule.
[[nodiscard]] std::vector<StepFunction> link_timelines(const Graph& g,
                                                       const Schedule& schedule);

/// Edges that carry traffic at some point (the active set E_a of Eq. 4).
[[nodiscard]] std::vector<EdgeId> active_edges(const Graph& g,
                                               const Schedule& schedule);

/// Total energy Phi_f of Eq. 5 over `horizon` = [T0, T1]:
///   sigma * (T1 - T0) * |E_a|  +  sum_e integral mu * x_e(t)^alpha dt.
[[nodiscard]] double energy_phi_f(const Graph& g, const Schedule& schedule,
                                  const PowerModel& model, Interval horizon);

/// Dynamic-only energy Phi_g of Eq. 6 (no idle term).
[[nodiscard]] double energy_phi_g(const Graph& g, const Schedule& schedule,
                                  const PowerModel& model, Interval horizon);

/// Result of validating a schedule against its flow set.
struct FeasibilityReport {
  bool feasible = true;
  std::vector<std::string> violations;

  void fail(std::string message);
};

/// Checks every requirement of a feasible schedule (Sec. II-B):
///  * each flow's path is a valid simple src->dst path,
///  * segments lie inside the flow's span, are disjoint, have positive
///    rate, and move the full volume (Eq. 3),
///  * no link's total rate ever exceeds capacity.
/// `tol` absorbs float error (volumes are compared relative to w_i).
[[nodiscard]] FeasibilityReport check_feasibility(const Graph& g,
                                                  const std::vector<Flow>& flows,
                                                  const Schedule& schedule,
                                                  const PowerModel& model,
                                                  double tol = 1e-6);

}  // namespace dcn
