#include "schedule/schedule.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dcn {

double FlowSchedule::transmitted_volume() const {
  double total = 0.0;
  for (const RateSegment& seg : segments) total += seg.volume();
  return total;
}

double FlowSchedule::transmission_time() const {
  double total = 0.0;
  for (const RateSegment& seg : segments) {
    if (seg.rate > 0.0) total += seg.interval.measure();
  }
  return total;
}

std::vector<StepFunction> link_timelines(const Graph& g, const Schedule& schedule) {
  std::vector<StepFunction> timelines(static_cast<std::size_t>(g.num_edges()));
  for (const FlowSchedule& fs : schedule.flows) {
    for (const RateSegment& seg : fs.segments) {
      if (seg.rate <= 0.0 || seg.interval.empty()) continue;
      for (EdgeId e : fs.path.edges) {
        timelines[static_cast<std::size_t>(e)].add(seg.interval, seg.rate);
      }
    }
  }
  return timelines;
}

std::vector<EdgeId> active_edges(const Graph& g, const Schedule& schedule) {
  const std::vector<StepFunction> timelines = link_timelines(g, schedule);
  std::vector<EdgeId> active;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!timelines[static_cast<std::size_t>(e)].is_zero()) active.push_back(e);
  }
  return active;
}

namespace {

double dynamic_energy(const Graph& g, const Schedule& schedule,
                      const PowerModel& model, Interval horizon) {
  const std::vector<StepFunction> timelines = link_timelines(g, schedule);
  double total = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    total += timelines[static_cast<std::size_t>(e)].integrate_transformed(
        horizon, [&model](double x) { return model.g(x); });
  }
  return total;
}

}  // namespace

double energy_phi_f(const Graph& g, const Schedule& schedule,
                    const PowerModel& model, Interval horizon) {
  DCN_EXPECTS(!horizon.empty());
  const auto n_active = static_cast<double>(active_edges(g, schedule).size());
  return model.sigma() * horizon.measure() * n_active +
         dynamic_energy(g, schedule, model, horizon);
}

double energy_phi_g(const Graph& g, const Schedule& schedule,
                    const PowerModel& model, Interval horizon) {
  DCN_EXPECTS(!horizon.empty());
  return dynamic_energy(g, schedule, model, horizon);
}

void FeasibilityReport::fail(std::string message) {
  feasible = false;
  violations.push_back(std::move(message));
}

FeasibilityReport check_feasibility(const Graph& g, const std::vector<Flow>& flows,
                                    const Schedule& schedule,
                                    const PowerModel& model, double tol) {
  FeasibilityReport report;
  if (schedule.flows.size() != flows.size()) {
    report.fail("schedule has " + std::to_string(schedule.flows.size()) +
                " entries for " + std::to_string(flows.size()) + " flows");
    return report;
  }

  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& flow = flows[i];
    const FlowSchedule& fs = schedule.flows[i];
    std::ostringstream tag;
    tag << "flow#" << flow.id << ": ";

    if (!is_valid_path(g, fs.path) || fs.path.src != flow.src ||
        fs.path.dst != flow.dst || fs.path.empty()) {
      report.fail(tag.str() + "path is not a valid simple src->dst path");
      continue;
    }

    // Segments: positive rate, inside the span, pairwise disjoint.
    std::vector<RateSegment> segs = fs.segments;
    std::sort(segs.begin(), segs.end(),
              [](const RateSegment& a, const RateSegment& b) {
                return a.interval.lo < b.interval.lo;
              });
    const double time_tol = tol * std::max(1.0, flow.deadline - flow.release);
    for (std::size_t s = 0; s < segs.size(); ++s) {
      if (segs[s].rate <= 0.0) {
        report.fail(tag.str() + "segment with non-positive rate");
      }
      if (segs[s].rate > model.capacity() * (1.0 + tol)) {
        report.fail(tag.str() + "segment rate exceeds link capacity");
      }
      if (segs[s].interval.lo < flow.release - time_tol ||
          segs[s].interval.hi > flow.deadline + time_tol) {
        report.fail(tag.str() + "segment outside the flow span");
      }
      if (s > 0 && segs[s].interval.lo < segs[s - 1].interval.hi - time_tol) {
        report.fail(tag.str() + "overlapping segments");
      }
    }

    const double moved = fs.transmitted_volume();
    if (std::fabs(moved - flow.volume) > tol * std::max(1.0, flow.volume)) {
      std::ostringstream msg;
      msg << tag.str() << "moved " << moved << " of " << flow.volume;
      report.fail(msg.str());
    }
  }
  if (!report.feasible) return report;

  // Link capacity across flows.
  const std::vector<StepFunction> timelines = link_timelines(g, schedule);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const double peak = timelines[static_cast<std::size_t>(e)].max_value();
    if (peak > model.capacity() * (1.0 + tol)) {
      std::ostringstream msg;
      msg << "link e" << e << ": peak rate " << peak << " exceeds capacity "
          << model.capacity();
      report.fail(msg.str());
    }
  }
  return report;
}

}  // namespace dcn
