#include "dcfs/most_critical_first.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/contracts.h"
#include "schedule/edf.h"

namespace dcn {

namespace {

struct CriticalChoice {
  double intensity = -1.0;
  EdgeId link = kInvalidEdge;
  Interval window;
  std::vector<FlowId> contained;
};

/// Deterministic preference between candidates of (nearly) equal
/// intensity: earlier window start, then wider window, then smaller link.
bool better_choice(double intensity, EdgeId link, const Interval& window,
                   const CriticalChoice& best) {
  if (intensity > best.intensity + 1e-15) return true;
  if (intensity < best.intensity - 1e-15) return false;
  if (window.lo != best.window.lo) return window.lo < best.window.lo;
  if (window.hi != best.window.hi) return window.hi > best.window.hi;
  return link < best.link;
}

}  // namespace

DcfsResult most_critical_first(const Graph& g, const std::vector<Flow>& flows,
                               const std::vector<Path>& paths,
                               const PowerModel& model, const DcfsOptions& options) {
  DCN_EXPECTS(paths.size() == flows.size());
  DCN_EXPECTS(options.escalation_factor > 1.0);
  DCN_EXPECTS(options.max_escalations >= 0);
  validate_flows(g, flows);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    DCN_EXPECTS(is_valid_path(g, paths[i]));
    DCN_EXPECTS(paths[i].src == flows[i].src);
    DCN_EXPECTS(paths[i].dst == flows[i].dst);
    DCN_EXPECTS(!paths[i].empty());
  }

  const double alpha = model.alpha();
  const std::size_t n = flows.size();

  // Virtual weights w'_i = w_i * |P_i|^(1/alpha) (Theorem 1); the
  // ablation variant uses the uncorrected w_i.
  std::vector<double> virtual_weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    virtual_weight[i] =
        options.use_virtual_weights
            ? flows[i].volume *
                  std::pow(static_cast<double>(paths[i].length()), 1.0 / alpha)
            : flows[i].volume;
  }

  // Flows assigned to each link (J_e), indexed by the dense EdgeId —
  // iteration order is edge-ascending by construction, so no hash
  // order can reach the schedule (dcn_lint: unordered-iter).
  const auto num_edges = static_cast<std::size_t>(g.num_edges());
  std::vector<std::vector<FlowId>> link_flows(num_edges);
  for (std::size_t i = 0; i < n; ++i) {
    for (EdgeId e : paths[i].edges) {
      link_flows[static_cast<std::size_t>(e)].push_back(static_cast<FlowId>(i));
    }
  }

  // Deterministic link iteration order: used links, edge-ascending.
  std::vector<EdgeId> links;
  for (std::size_t e = 0; e < num_edges; ++e) {
    if (!link_flows[e].empty()) links.push_back(static_cast<EdgeId>(e));
  }

  const Interval horizon = flow_horizon(flows);
  std::vector<IntervalSet> avail(num_edges);
  for (EdgeId e : links) {
    avail[static_cast<std::size_t>(e)] = IntervalSet{horizon};
  }

  DcfsResult result;
  result.schedule.flows.resize(n);
  result.rates.assign(n, 0.0);
  std::vector<bool> done(n, false);
  std::size_t remaining = n;

  while (remaining > 0) {
    // Allowed time per pending flow. circuit_exact: intersect the
    // availability of every link on the flow's path (a transmitting
    // flow occupies them all simultaneously); paper-literal mode defers
    // to per-link clipping below.
    std::vector<IntervalSet> allowed(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      IntervalSet a{flows[i].span()};
      if (options.circuit_exact) {
        for (EdgeId e : paths[i].edges) {
          a = a.intersect(avail[static_cast<std::size_t>(e)]);
          if (a.empty()) break;
        }
      }
      if (a.empty()) {
        // Earlier critical batches consumed the flow's whole span on
        // some link of its path: no overlap-free slot remains. Fall
        // back to span-only availability — the flow will overlap other
        // flows on shared links, which a packet-switched network
        // resolves by priorities (Sec. III-C) and which the energy
        // evaluator charges superadditively. Counted in the result.
        a = IntervalSet{flows[i].span()};
        ++result.availability_fallbacks;
      }
      allowed[i] = std::move(a);
    }

    CriticalChoice best;
    for (EdgeId e : links) {
      // Pending flows on this link with their clipped allowed sets.
      std::vector<FlowId> pending;
      std::vector<const IntervalSet*> clipped;
      std::vector<IntervalSet> storage;  // paper-literal per-link clips
      // keep clipped pointers stable
      storage.reserve(link_flows[static_cast<std::size_t>(e)].size());
      for (FlowId fid : link_flows[static_cast<std::size_t>(e)]) {
        const auto i = static_cast<std::size_t>(fid);
        if (done[i]) continue;
        if (options.circuit_exact) {
          clipped.push_back(&allowed[i]);
        } else {
          IntervalSet a = avail[static_cast<std::size_t>(e)].intersect(flows[i].span());
          if (a.empty()) {
            // Span fully booked on this link: fall back to the raw span
            // (overlap resolved by packet priorities; see header note).
            a = IntervalSet{flows[i].span()};
            ++result.availability_fallbacks;
          }
          storage.push_back(std::move(a));
          clipped.push_back(&storage.back());
        }
        pending.push_back(fid);
      }
      if (pending.empty()) continue;

      // Candidate windows: minimal enclosing intervals of clipped spans.
      for (std::size_t ai = 0; ai < pending.size(); ++ai) {
        const double a = clipped[ai]->min();
        for (std::size_t bi = 0; bi < pending.size(); ++bi) {
          const double b = clipped[bi]->max();
          if (b <= a) continue;
          const Interval window{a, b};
          double work = 0.0;
          std::vector<FlowId> contained;
          IntervalSet usable;
          for (std::size_t j = 0; j < pending.size(); ++j) {
            if (clipped[j]->min() >= a && clipped[j]->max() <= b) {
              work += virtual_weight[static_cast<std::size_t>(pending[j])];
              contained.push_back(pending[j]);
              usable.unite(*clipped[j]);
            }
          }
          if (contained.empty()) continue;
          // Denominator "a ~ b": the usable time. Paper-literal: the
          // critical link's availability inside the window.
          // Circuit-exact: the union of contained flows' allowed sets
          // (identical whenever the allowed sets cover the window).
          double denom = options.circuit_exact
                             ? usable.measure()
                             : avail[static_cast<std::size_t>(e)].measure_within(window);
          if (denom <= 0.0) {
            // Only reachable through the span-availability fallback in
            // paper-literal mode: the link has no free time in the
            // window, yet the contained flows must run there. Base the
            // intensity on the time EDF can actually use.
            denom = usable.measure();
          }
          DCN_ENSURES(denom > 0.0);
          const double intensity = work / denom;
          if (better_choice(intensity, e, window, best)) {
            best = {intensity, e, window, std::move(contained)};
          }
        }
      }
    }
    DCN_ENSURES(best.intensity > 0.0);

    // EDF at the critical speed; in circuit-exact mode escalate the
    // batch speed geometrically if cross-link fragmentation defeats the
    // Hall condition at the base intensity.
    double delta = best.intensity;
    EdfResult edf;
    std::int32_t escalations = 0;
    while (true) {
      std::vector<EdfJob> edf_jobs;
      edf_jobs.reserve(best.contained.size());
      for (FlowId fid : best.contained) {
        const auto i = static_cast<std::size_t>(fid);
        IntervalSet job_allowed = options.circuit_exact
                                      ? allowed[i]
                                      : avail[static_cast<std::size_t>(best.link)].intersect(flows[i].span());
        if (job_allowed.empty()) job_allowed = IntervalSet{flows[i].span()};
        edf_jobs.push_back(EdfJob{fid, flows[i].deadline,
                                  virtual_weight[i] / delta,
                                  std::move(job_allowed)});
      }
      edf = preemptive_edf(edf_jobs);
      if (edf.feasible) break;
      if (escalations >= options.max_escalations) {
        throw InfeasibleError(
            "most_critical_first: EDF failed inside the critical interval");
      }
      delta *= options.escalation_factor;
      ++escalations;
    }
    if (escalations > 0) ++result.speed_escalations;

    // Rates s_i = w_i / processing_i = w_i * delta / w'_i, which is
    // delta / |P_i|^(1/alpha) under the paper's virtual weights
    // (Algorithm 1, step 3).
    for (std::size_t k = 0; k < best.contained.size(); ++k) {
      const auto i = static_cast<std::size_t>(best.contained[k]);
      const double rate = flows[i].volume * delta / virtual_weight[i];
      FlowSchedule& fs = result.schedule.flows[i];
      fs.path = paths[i];
      for (const Interval& seg : edf.segments[k]) {
        fs.segments.push_back({seg, rate});
      }
      result.rates[i] = rate;
      // A transmitting flow occupies every link on its path: mark the
      // execution segments busy along the whole path (step 6).
      for (EdgeId e : paths[i].edges) {
        IntervalSet& link_avail = avail[static_cast<std::size_t>(e)];
        for (const Interval& seg : edf.segments[k]) {
          link_avail.subtract(seg);
        }
      }
      done[i] = true;
      --remaining;
    }
    ++result.iterations;
  }
  return result;
}

}  // namespace dcn
