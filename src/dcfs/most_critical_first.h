// Most-Critical-First — the optimal combinatorial algorithm for DCFS
// (Algorithm 1 of the paper).
//
// Given routes P_i for every flow, the minimum-energy rate assignment is
// a YDS computation over *virtual weights* w'_i = w_i * |P_i|^(1/alpha)
// (Theorem 1): iteratively find the (link, interval) pair maximizing the
// intensity delta(I, e) of Definition 1, schedule those flows inside the
// critical interval with preemptive EDF at rates
// s_i = delta / |P_i|^(1/alpha), then mark the chosen execution segments
// busy on *every* link of each scheduled flow's path (step 6; a
// transmitting flow occupies its whole path in the virtual-circuit
// model).
//
// Faithfulness note. Algorithm 1 as printed computes availability and
// runs EDF against the critical link only; a flow scheduled in a later
// iteration can then overlap an earlier flow's busy period on a
// *non-critical* link of its path, violating the virtual-circuit
// exclusivity that the optimality proof (Theorem 1) relies on. This
// implementation offers both semantics:
//
//  * circuit_exact = true (default): a pending flow's allowed time is
//    its span intersected with the availability of EVERY link on its
//    path; the intensity denominator is the usable time (measure of the
//    union of contained flows' allowed sets), which coincides with the
//    paper's "a ~ b" whenever spans cover the window. Produced
//    schedules never place two flows on one link simultaneously, and
//    the energy equals the analytic optimum form
//    sum_i |P_i| w_i s_i^(alpha-1). If cross-link fragmentation makes
//    EDF fail at the critical intensity (rare), the batch speed is
//    escalated geometrically until EDF fits (counted in the result).
//
//  * circuit_exact = false: the paper-literal rule (per-critical-link
//    availability). Overlaps on non-critical links are then possible;
//    they are legal in a packet-switched realization (the paper's
//    priority argument) and the energy evaluator charges their
//    superadditive cost honestly. Exercised by the ablation bench.
#pragma once

#include <vector>

#include "common/errors.h"
#include "flow/flow.h"
#include "graph/path.h"
#include "power/power_model.h"
#include "schedule/schedule.h"

namespace dcn {

struct DcfsOptions {
  /// See the header comment. Default: exact virtual-circuit semantics.
  bool circuit_exact = true;
  /// Geometric speed escalation factor / cap for the EDF safety net.
  double escalation_factor = 1.1;
  std::int32_t max_escalations = 100;
  /// When false, plain weights w_i replace the paper's virtual weights
  /// w_i * |P_i|^(1/alpha) — the ablation quantifying Theorem 1's
  /// path-length correction (bench_ablation_vweight).
  bool use_virtual_weights = true;
};

/// Result of Most-Critical-First.
struct DcfsResult {
  /// Full schedule: paths as given, EDF execution segments, one rate per
  /// flow (Lemma 1: the optimum uses a single rate per flow).
  Schedule schedule;
  /// The chosen transmission rate s_i per flow.
  std::vector<double> rates;
  /// Number of critical-interval iterations performed.
  std::int32_t iterations = 0;
  /// Number of critical batches that needed speed escalation
  /// (0 means the pure YDS speeds sufficed).
  std::int32_t speed_escalations = 0;
  /// Number of times a pending flow's span was already fully booked on
  /// one of its links and the algorithm fell back to span-only
  /// availability (such flows overlap others on shared links; the
  /// packet-level priority realization of Sec. III-C absorbs this, and
  /// the energy evaluator charges the superadditive cost honestly).
  /// 0 on uncongested instances — the optimality guarantee applies then.
  std::int32_t availability_fallbacks = 0;
};

/// Runs Algorithm 1. `paths[i]` must be a valid simple path for
/// flows[i]. Throws InfeasibleError when some flow's span has no
/// available time left on its links (no virtual-circuit schedule exists
/// under the marks made so far).
[[nodiscard]] DcfsResult most_critical_first(const Graph& g,
                                             const std::vector<Flow>& flows,
                                             const std::vector<Path>& paths,
                                             const PowerModel& model,
                                             const DcfsOptions& options = {});

}  // namespace dcn
