// Closed-open time intervals and sets of disjoint intervals.
//
// Interval arithmetic is the backbone of availability bookkeeping in the
// YDS-style critical-interval algorithms (Sec. III of the paper): the
// "available time a ~ b" of Definition 1 is the measure of [a,b] minus
// the union of already-committed busy intervals on a link. IntervalSet
// keeps a sorted vector of disjoint closed-open intervals and supports
// exact union / intersection / subtraction / measure.
#pragma once

#include <iosfwd>
#include <vector>

#include "common/contracts.h"

namespace dcn {

/// A closed-open interval [lo, hi) on the real time axis.
///
/// Empty intervals (hi <= lo) are permitted as values but are never
/// stored inside an IntervalSet.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double lo_, double hi_) : lo(lo_), hi(hi_) {}

  /// Length of the interval; zero for empty intervals.
  [[nodiscard]] double measure() const { return hi > lo ? hi - lo : 0.0; }

  [[nodiscard]] bool empty() const { return hi <= lo; }

  /// True when `t` lies in [lo, hi).
  [[nodiscard]] bool contains(double t) const { return t >= lo && t < hi; }

  /// True when `other` is fully contained: lo <= other.lo && other.hi <= hi.
  [[nodiscard]] bool covers(const Interval& other) const {
    return lo <= other.lo && other.hi <= hi;
  }

  /// Intersection with another interval (possibly empty).
  [[nodiscard]] Interval intersect(const Interval& other) const {
    return {lo > other.lo ? lo : other.lo, hi < other.hi ? hi : other.hi};
  }

  /// True when the two intervals share at least one point.
  [[nodiscard]] bool overlaps(const Interval& other) const {
    return lo < other.hi && other.lo < hi;
  }

  friend bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// A set of points on the time axis stored as sorted, disjoint,
/// non-adjacent closed-open intervals.
///
/// All mutating operations keep the canonical form (sorted, disjoint,
/// merged when touching), so equality of sets is equality of the
/// representation.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Singleton set; an empty interval produces the empty set.
  explicit IntervalSet(const Interval& iv) {
    if (!iv.empty()) ivs_.push_back(iv);
  }

  /// Builds the canonical form from arbitrary (possibly overlapping,
  /// unordered, empty) intervals.
  static IntervalSet from_intervals(std::vector<Interval> ivs);

  /// Adds [iv.lo, iv.hi) to the set (union with a single interval).
  void add(const Interval& iv);

  /// Removes [iv.lo, iv.hi) from the set.
  void subtract(const Interval& iv);

  /// Set union with another set.
  void unite(const IntervalSet& other);

  /// Set subtraction: removes every point of `other` from this set.
  void subtract(const IntervalSet& other);

  /// Returns this set clipped to `window` (set intersection with a
  /// single interval).
  [[nodiscard]] IntervalSet intersect(const Interval& window) const;

  /// Set intersection with another set.
  [[nodiscard]] IntervalSet intersect(const IntervalSet& other) const;

  /// Total length of all member intervals.
  [[nodiscard]] double measure() const;

  /// Length of the part of this set inside `window`.
  [[nodiscard]] double measure_within(const Interval& window) const;

  /// True when `t` is a member point.
  [[nodiscard]] bool contains(double t) const;

  /// True when every point of `iv` is a member.
  [[nodiscard]] bool covers(const Interval& iv) const;

  [[nodiscard]] bool empty() const { return ivs_.empty(); }
  [[nodiscard]] std::size_t size() const { return ivs_.size(); }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return ivs_; }

  /// Smallest member point; set must be non-empty.
  [[nodiscard]] double min() const {
    DCN_EXPECTS(!ivs_.empty());
    return ivs_.front().lo;
  }
  /// Supremum of the set; set must be non-empty.
  [[nodiscard]] double max() const {
    DCN_EXPECTS(!ivs_.empty());
    return ivs_.back().hi;
  }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

 private:
  void normalize();

  std::vector<Interval> ivs_;  // sorted by lo, disjoint, non-adjacent
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& set);

}  // namespace dcn
