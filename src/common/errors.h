// Library error types.
#pragma once

#include <stdexcept>
#include <string>

namespace dcn {

/// Thrown when a scheduling problem instance admits no feasible
/// solution under the model in force (e.g. a flow whose entire span is
/// already committed on one of its links, or a capacity that no
/// schedule can respect).
class InfeasibleError : public std::runtime_error {
 public:
  explicit InfeasibleError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace dcn
