// Deterministic, seedable random number generation.
//
// Every stochastic component in the library (workload generation,
// randomized rounding) draws from an explicitly seeded Rng so that every
// experiment in EXPERIMENTS.md is reproducible bit-for-bit. The engine
// is xoshiro256** seeded through splitmix64, the combination recommended
// by the xoshiro authors; it satisfies UniformRandomBitGenerator so the
// <random> distributions compose with it.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace dcn {

/// splitmix64 step — used for seeding and cheap hash-like mixing.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state);

/// Deterministic seed derivation: mixes `seed` with a textual label
/// (FNV-1a, then splitmix64). Used to give each (run, component) pair —
/// e.g. a scenario build or a randomized solver on one instance — an
/// independent stream that does not depend on execution order.
[[nodiscard]] std::uint64_t mix_seed(std::uint64_t seed, std::string_view label);

/// xoshiro256** engine with std::uniform_random_bit_generator interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi); requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Normal sample with the given mean and standard deviation
  /// (Box–Muller; deterministic across platforms unlike
  /// std::normal_distribution).
  double normal(double mean, double stddev);

  /// Samples an index in [0, weights.size()) with probability
  /// proportional to weights[i]; requires at least one positive weight.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-run streams).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace dcn
