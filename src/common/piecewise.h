// Piecewise-constant functions of time.
//
// Link transmission-rate timelines x_e(t) are piecewise constant in every
// algorithm of the paper (rates only change at flow starts/stops or
// interval boundaries). StepFunction accumulates rate contributions and
// integrates f(x(t)) dt for arbitrary power functions, which is exactly
// the dynamic-energy term of Eq. 5/6.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/contracts.h"
#include "common/interval.h"

namespace dcn {

namespace piecewise_detail {
/// Values this close to zero are treated as zero when deciding whether
/// a segment is "active": the difference representation accumulates
/// float error when many flows start/stop at the same instant. Shared
/// by StepFunction and LoadProfile — the two must agree bit for bit.
constexpr double kZeroEps = 1e-12;
}  // namespace piecewise_detail

/// A right-continuous piecewise-constant function on the real line,
/// zero outside its breakpoints. Built by accumulating constant values
/// over intervals.
class StepFunction {
 public:
  StepFunction() = default;

  /// Adds `delta` to the function over [iv.lo, iv.hi).
  void add(const Interval& iv, double delta);

  /// Function value at time t.
  [[nodiscard]] double value_at(double t) const;

  /// Maximum value attained anywhere (0 for the zero function).
  [[nodiscard]] double max_value() const;

  /// Maximum value attained inside `window` (0 when the function is
  /// zero throughout it). Equivalent to scanning segments() for
  /// overlapping entries, but allocation-free and early-exiting at the
  /// first breakpoint at or past window.hi — the capacity-check hot
  /// path of the online schedulers calls this once per path edge per
  /// admission probe.
  [[nodiscard]] double max_within(const Interval& window) const;

  /// Integral of the function over the whole line.
  [[nodiscard]] double integral() const;

  /// Integral of transform(value) over `window`, counting only segments
  /// where the value is strictly positive (transform is not evaluated on
  /// zero-valued stretches — matching the power model f(0) = 0).
  [[nodiscard]] double integrate_transformed(
      const Interval& window, const std::function<double(double)>& transform) const;

  /// Total time (measure) within `window` where the value is > eps.
  [[nodiscard]] double positive_measure(const Interval& window,
                                        double eps = 0.0) const;

  /// Earliest time t >= from with integral_{from}^{t} value dt >= volume,
  /// or +infinity when the function never accumulates that much. Used by
  /// the packet simulator to serve a packet over a time-varying link
  /// rate. Requires volume >= 0.
  [[nodiscard]] double time_to_accumulate(double from, double volume) const;

  /// Integral of the function over [from, to].
  [[nodiscard]] double integral_between(double from, double to) const;

  /// The function as a list of (interval, value) segments with non-zero
  /// value, sorted by time, maximal (adjacent equal-valued segments merged).
  [[nodiscard]] std::vector<std::pair<Interval, double>> segments() const;

  /// True when the function is identically zero.
  [[nodiscard]] bool is_zero() const;

  /// Folds every breakpoint strictly before t into one carried delta at
  /// the last folded breakpoint's time (omitted when the fold is exactly
  /// zero). The fold runs in ascending time order — the exact partial
  /// fold every probe performs — so for any query at or after the last
  /// folded breakpoint the function is indistinguishable from the
  /// unpruned one: LoadProfile::prune_before's contract, on the naive
  /// representation. Bounds audit-shadow growth in long soaks (the
  /// audit cross-checks only probe at or after the low-water mark).
  void drop_before(double t);

  /// Breakpoints currently held (the memory the audit shadow bounds).
  [[nodiscard]] std::int64_t breakpoint_count() const {
    return static_cast<std::int64_t>(deltas_.size());
  }

 private:
  // Breakpoint map: value changes by deltas_[t] at time t (fenwick-style
  // difference representation). The function at t is the prefix sum of
  // all deltas at breakpoints <= t.
  std::map<double, double> deltas_;
};

/// A prunable step function for committed-load bookkeeping: the
/// incremental load index of the online schedulers.
///
/// StepFunction answers every probe by folding the delta map from its
/// first breakpoint, so probe cost grows with *total* history — after
/// thousands of commits on a hot edge, each admission check replays
/// flows that departed long ago. LoadProfile keeps the same difference
/// representation in a sorted vector and adds
///
///   * cached absolute prefix values (`prefix_[i]` = the value right
///     after breakpoint i, computed by the exact left-to-right fold
///     StepFunction performs) refreshed lazily after adds, so
///     `value_at` is one binary search;
///   * a block-max overlay over those prefix values, so `max_within`
///     scans two boundary blocks entry-wise and takes whole interior
///     blocks from the cache;
///   * `prune_before(t)`: breakpoints strictly older than t fold — in
///     ascending order, preserving the fold bitwise — into a base
///     value, so live memory and probe cost are bounded by *active*
///     history once the scheduler advances its low-water mark (the
///     earliest release among flows still in flight).
///
/// Bitwise contract: for every probe at or after the prune point,
/// LoadProfile returns exactly what the equivalent StepFunction (same
/// adds, never pruned) returns — same fold order, same kZeroEps
/// snapping, same merged-segment structure. tests/load_index_test.cc
/// pins this differentially; EdgeLoadIndex's audit mode re-checks it on
/// every probe of a live run.
///
/// Probes mutate lazy caches: a LoadProfile is not safe for concurrent
/// use (each online run owns its own index; BatchRunner parallelism is
/// across cells, never within one).
class LoadProfile {
 public:
  LoadProfile() = default;

  /// Adds `delta` over [iv.lo, iv.hi). Requires iv.lo at or after the
  /// prune point. Amortized O(log live + shift): committed spans start
  /// near "now", so insertions land near the live tail.
  void add(const Interval& iv, double delta);

  /// Function value at time t (t at or after the prune point).
  [[nodiscard]] double value_at(double t) const;

  /// Maximum value inside `window` (window.lo at or after the prune
  /// point) — bitwise StepFunction::max_within on the live region.
  [[nodiscard]] double max_within(const Interval& window) const;

  /// Folds every breakpoint strictly before t into the base value and
  /// drops it. Monotone: prune points only advance.
  void prune_before(double t);

  /// Merged maximal segments — StepFunction::segments() semantics
  /// (non-zero value, adjacent equal-valued runs merged, sticky first
  /// value) — enumerated from the nearest guaranteed run boundary at or
  /// before `from` (`from` at or after the prune point). `fn` is
  /// called as fn(const Interval&, double value) per run, in time
  /// order; returning false stops the walk (runs wholly past a caller's
  /// window contribute nothing, exactly as the clipped naive scan).
  template <typename Fn>
  void for_each_segment_from(double from, Fn&& fn) const {
    DCN_EXPECTS(!(from < origin_));
    refresh();
    const std::size_t n = entries_.size();
    // The elementary segment containing `from` ends at the first
    // breakpoint past it; rewind to a guaranteed naive run boundary —
    // index 0 or a zero-valued elementary segment (segments() skips
    // those, so no merged run crosses one).
    std::size_t i = upper_index(from);
    while (i > 0 &&
           std::fabs(value_before(i)) >= piecewise_detail::kZeroEps) {
      --i;
    }
    bool open = false;
    Interval run{0.0, 0.0};
    double run_v = 0.0;
    for (; i < n; ++i) {
      const double lo = i == 0 ? origin_ : entries_[i - 1].first;
      const double hi = entries_[i].first;
      const double v = value_before(i);
      if (std::fabs(v) < piecewise_detail::kZeroEps || !(hi > lo)) {
        // segments() skips zero-valued stretches, which also breaks
        // run adjacency for whatever follows.
        if (open && !fn(static_cast<const Interval&>(run), run_v)) return;
        open = false;
        continue;
      }
      if (open && run.hi == lo &&
          std::fabs(run_v - v) < piecewise_detail::kZeroEps) {
        run.hi = hi;  // merge equal-valued adjacent segments
      } else {
        if (open && !fn(static_cast<const Interval&>(run), run_v)) return;
        run = {lo, hi};
        run_v = v;
        open = true;
      }
    }
    if (open) fn(static_cast<const Interval&>(run), run_v);
  }

  /// Breakpoints currently live (not pruned).
  [[nodiscard]] std::int64_t live_breakpoints() const {
    return static_cast<std::int64_t>(entries_.size());
  }
  /// Breakpoints folded away by prune_before over the lifetime.
  [[nodiscard]] std::int64_t pruned_breakpoints() const { return pruned_; }
  /// Current prune point (-inf when never pruned).
  [[nodiscard]] double prune_time() const { return origin_; }

 private:
  /// Entries per block-max cache block. Boundary blocks of a max_within
  /// are scanned entry-wise, so the value is a latency/granularity
  /// trade: 32 keeps the scan short while interior blocks amortize.
  static constexpr std::size_t kBlock = 32;

  /// Index of the first entry with time > t.
  [[nodiscard]] std::size_t upper_index(double t) const;
  /// Value on the elementary segment ending at entry i (the exact
  /// naive prefix before folding entry i's delta).
  [[nodiscard]] double value_before(std::size_t i) const {
    return i == 0 ? base_ : prefix_[i - 1];
  }
  /// Rebuilds prefix_/block_max_ from the first dirty entry.
  void refresh() const;

  // (time, delta), sorted by strictly increasing time; deltas at equal
  // times accumulate into one entry, matching the map representation.
  std::vector<std::pair<double, double>> entries_;
  // Folded prefix of every pruned breakpoint, in ascending time order —
  // the exact partial fold StepFunction's scan would have produced.
  double base_ = 0.0;
  // Prune point: queries and adds before this time are out of contract.
  double origin_ = -std::numeric_limits<double>::infinity();
  std::int64_t pruned_ = 0;

  // Lazy caches (see class comment): prefix_[i] is the absolute value
  // after entries_[0..i]; block_max_[b] is the max over block b's
  // entries of the kZeroEps-filtered value *before* each entry (the
  // max_within candidates), -inf when the block has none.
  mutable std::vector<double> prefix_;
  mutable std::vector<double> block_max_;
  mutable std::size_t clean_ = 0;  // entries_[0..clean_) have valid caches
};

}  // namespace dcn
