// Piecewise-constant functions of time.
//
// Link transmission-rate timelines x_e(t) are piecewise constant in every
// algorithm of the paper (rates only change at flow starts/stops or
// interval boundaries). StepFunction accumulates rate contributions and
// integrates f(x(t)) dt for arbitrary power functions, which is exactly
// the dynamic-energy term of Eq. 5/6.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "common/interval.h"

namespace dcn {

/// A right-continuous piecewise-constant function on the real line,
/// zero outside its breakpoints. Built by accumulating constant values
/// over intervals.
class StepFunction {
 public:
  StepFunction() = default;

  /// Adds `delta` to the function over [iv.lo, iv.hi).
  void add(const Interval& iv, double delta);

  /// Function value at time t.
  [[nodiscard]] double value_at(double t) const;

  /// Maximum value attained anywhere (0 for the zero function).
  [[nodiscard]] double max_value() const;

  /// Maximum value attained inside `window` (0 when the function is
  /// zero throughout it). Equivalent to scanning segments() for
  /// overlapping entries, but allocation-free and early-exiting at the
  /// first breakpoint at or past window.hi — the capacity-check hot
  /// path of the online schedulers calls this once per path edge per
  /// admission probe.
  [[nodiscard]] double max_within(const Interval& window) const;

  /// Integral of the function over the whole line.
  [[nodiscard]] double integral() const;

  /// Integral of transform(value) over `window`, counting only segments
  /// where the value is strictly positive (transform is not evaluated on
  /// zero-valued stretches — matching the power model f(0) = 0).
  [[nodiscard]] double integrate_transformed(
      const Interval& window, const std::function<double(double)>& transform) const;

  /// Total time (measure) within `window` where the value is > eps.
  [[nodiscard]] double positive_measure(const Interval& window,
                                        double eps = 0.0) const;

  /// Earliest time t >= from with integral_{from}^{t} value dt >= volume,
  /// or +infinity when the function never accumulates that much. Used by
  /// the packet simulator to serve a packet over a time-varying link
  /// rate. Requires volume >= 0.
  [[nodiscard]] double time_to_accumulate(double from, double volume) const;

  /// Integral of the function over [from, to].
  [[nodiscard]] double integral_between(double from, double to) const;

  /// The function as a list of (interval, value) segments with non-zero
  /// value, sorted by time, maximal (adjacent equal-valued segments merged).
  [[nodiscard]] std::vector<std::pair<Interval, double>> segments() const;

  /// True when the function is identically zero.
  [[nodiscard]] bool is_zero() const;

 private:
  // Breakpoint map: value changes by deltas_[t] at time t (fenwick-style
  // difference representation). The function at t is the prefix sum of
  // all deltas at breakpoints <= t.
  std::map<double, double> deltas_;
};

}  // namespace dcn
