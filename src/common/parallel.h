// A small persistent worker pool for fine-grained deterministic fan-out.
//
// BatchRunner-style "spawn threads per call" is fine when a call does
// seconds of work; the Frank-Wolfe linearization oracle dispatches
// ~10^4 times per relaxation solve, so workers must persist and be
// woken cheaply. Tasks are claimed from an atomic counter; the caller
// participates as worker 0 and run() blocks until every task finished.
// Determinism is by construction: callers write results into
// per-task-disjoint slots, so the outcome is independent of how tasks
// land on workers.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dcn {

class WorkerPool {
 public:
  /// Spawns `threads - 1` background workers (the calling thread is
  /// worker 0). `threads` == 0 means hardware concurrency.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total worker count including the calling thread (>= 1).
  [[nodiscard]] std::size_t threads() const { return workers_.size() + 1; }

  /// Runs fn(task_index, worker_index) for every task_index in
  /// [0, num_tasks); worker_index < threads(). Blocks until all tasks
  /// completed. The first exception thrown by any task is rethrown
  /// here (remaining tasks still drain). Not reentrant.
  void run(std::size_t num_tasks,
           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker_index);
  void work(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  const std::function<void(std::size_t, std::size_t)>* task_fn_ = nullptr;
  std::size_t num_tasks_ = 0;
  std::size_t next_task_ = 0;
  std::size_t tasks_finished_ = 0;
  std::uint64_t epoch_ = 0;  // bumped per run(); wakes sleeping workers
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace dcn
