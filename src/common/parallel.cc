#include "common/parallel.h"

#include <algorithm>

#include "common/contracts.h"

namespace dcn {

WorkerPool::WorkerPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads - 1);
  for (std::size_t t = 1; t < threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::worker_loop(std::size_t worker_index) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    work(worker_index);
  }
}

void WorkerPool::work(std::size_t worker_index) {
  while (true) {
    std::size_t task;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (next_task_ >= num_tasks_) return;
      task = next_task_++;
    }
    try {
      (*task_fn_)(task, worker_index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (++tasks_finished_ == num_tasks_) {
        done_.notify_all();
        return;
      }
    }
  }
}

void WorkerPool::run(std::size_t num_tasks,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (num_tasks == 0) return;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    DCN_EXPECTS(task_fn_ == nullptr);  // not reentrant
    task_fn_ = &fn;
    num_tasks_ = num_tasks;
    next_task_ = 0;
    tasks_finished_ = 0;
    first_error_ = nullptr;
    ++epoch_;
  }
  wake_.notify_all();
  work(/*worker_index=*/0);
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return tasks_finished_ == num_tasks_; });
    task_fn_ = nullptr;
    num_tasks_ = 0;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace dcn
