#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/contracts.h"

namespace dcn {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return n_ ? mean_ : 0.0; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double percentile(std::vector<double> values, double q) {
  DCN_EXPECTS(!values.empty());
  DCN_EXPECTS(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[rank == 0 ? 0 : rank - 1];
}

std::string format_mean_ci(const RunningStats& s, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << s.mean() << " +/- " << s.ci95_halfwidth();
  return os.str();
}

}  // namespace dcn
