// Contract checking for public API boundaries.
//
// Following the C++ Core Guidelines (I.6/I.8: prefer Expects()/Ensures()
// for preconditions/postconditions), every public entry point of the
// library states its contract with DCN_EXPECTS and DCN_ENSURES. A
// violated contract throws dcn::ContractViolation carrying the failed
// expression and source location; tests assert on these, and callers get
// a diagnosable error instead of undefined behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace dcn {

/// Thrown when a DCN_EXPECTS / DCN_ENSURES contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: (" + expr + ") at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace dcn

/// Precondition check: throws dcn::ContractViolation when `cond` is false.
#define DCN_EXPECTS(cond)                                                  \
  do {                                                                     \
    if (!(cond)) ::dcn::detail::contract_fail("precondition", #cond, __FILE__, __LINE__); \
  } while (false)

/// Postcondition / invariant check: throws dcn::ContractViolation when false.
#define DCN_ENSURES(cond)                                                  \
  do {                                                                     \
    if (!(cond)) ::dcn::detail::contract_fail("postcondition", #cond, __FILE__, __LINE__); \
  } while (false)
