#include "common/interval.h"

#include <algorithm>
#include <ostream>

namespace dcn {

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  return os << "[" << iv.lo << ", " << iv.hi << ")";
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& set) {
  os << "{";
  bool first = true;
  for (const Interval& iv : set.intervals()) {
    if (!first) os << ", ";
    os << iv;
    first = false;
  }
  return os << "}";
}

IntervalSet IntervalSet::from_intervals(std::vector<Interval> ivs) {
  IntervalSet out;
  std::erase_if(ivs, [](const Interval& iv) { return iv.empty(); });
  std::sort(ivs.begin(), ivs.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  out.ivs_ = std::move(ivs);
  out.normalize();
  return out;
}

void IntervalSet::normalize() {
  // Precondition: ivs_ sorted by lo, no empty members. Merges touching
  // or overlapping neighbours so the representation is canonical.
  if (ivs_.empty()) return;
  std::vector<Interval> merged;
  merged.reserve(ivs_.size());
  merged.push_back(ivs_.front());
  for (std::size_t i = 1; i < ivs_.size(); ++i) {
    Interval& last = merged.back();
    const Interval& cur = ivs_[i];
    if (cur.lo <= last.hi) {
      last.hi = std::max(last.hi, cur.hi);
    } else {
      merged.push_back(cur);
    }
  }
  ivs_ = std::move(merged);
}

void IntervalSet::add(const Interval& iv) {
  if (iv.empty()) return;
  // Insert keeping order, then merge locally.
  auto it = std::lower_bound(
      ivs_.begin(), ivs_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  ivs_.insert(it, iv);
  normalize();
}

void IntervalSet::subtract(const Interval& iv) {
  if (iv.empty() || ivs_.empty()) return;
  std::vector<Interval> out;
  out.reserve(ivs_.size() + 1);
  for (const Interval& cur : ivs_) {
    if (!cur.overlaps(iv)) {
      out.push_back(cur);
      continue;
    }
    if (cur.lo < iv.lo) out.emplace_back(cur.lo, iv.lo);
    if (iv.hi < cur.hi) out.emplace_back(iv.hi, cur.hi);
  }
  ivs_ = std::move(out);
}

void IntervalSet::unite(const IntervalSet& other) {
  if (other.ivs_.empty()) return;
  std::vector<Interval> all;
  all.reserve(ivs_.size() + other.ivs_.size());
  std::merge(ivs_.begin(), ivs_.end(), other.ivs_.begin(), other.ivs_.end(),
             std::back_inserter(all),
             [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  ivs_ = std::move(all);
  normalize();
}

void IntervalSet::subtract(const IntervalSet& other) {
  for (const Interval& iv : other.ivs_) subtract(iv);
}

IntervalSet IntervalSet::intersect(const Interval& window) const {
  IntervalSet out;
  if (window.empty()) return out;
  for (const Interval& cur : ivs_) {
    Interval clipped = cur.intersect(window);
    if (!clipped.empty()) out.ivs_.push_back(clipped);
    if (cur.lo >= window.hi) break;
  }
  return out;
}

IntervalSet IntervalSet::intersect(const IntervalSet& other) const {
  // Linear sweep over both sorted sequences.
  IntervalSet out;
  std::size_t i = 0, j = 0;
  while (i < ivs_.size() && j < other.ivs_.size()) {
    const Interval& a = ivs_[i];
    const Interval& b = other.ivs_[j];
    Interval cut = a.intersect(b);
    if (!cut.empty()) out.ivs_.push_back(cut);
    if (a.hi < b.hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

double IntervalSet::measure() const {
  double total = 0.0;
  for (const Interval& iv : ivs_) total += iv.measure();
  return total;
}

double IntervalSet::measure_within(const Interval& window) const {
  double total = 0.0;
  for (const Interval& iv : ivs_) {
    total += iv.intersect(window).measure();
    if (iv.lo >= window.hi) break;
  }
  return total;
}

bool IntervalSet::contains(double t) const {
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), t,
      [](double v, const Interval& iv) { return v < iv.lo; });
  if (it == ivs_.begin()) return false;
  --it;
  return it->contains(t);
}

bool IntervalSet::covers(const Interval& iv) const {
  if (iv.empty()) return true;
  for (const Interval& cur : ivs_) {
    if (cur.covers(iv)) return true;
  }
  return false;
}

}  // namespace dcn
