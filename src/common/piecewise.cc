#include "common/piecewise.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dcn {

namespace {
// See piecewise_detail::kZeroEps (shared with LoadProfile, which must
// snap identically to stay bitwise-equal to the naive replay).
constexpr double kZeroEps = piecewise_detail::kZeroEps;

double snap_zero(double v) { return std::fabs(v) < kZeroEps ? 0.0 : v; }
}  // namespace

void StepFunction::add(const Interval& iv, double delta) {
  if (iv.empty() || delta == 0.0) return;
  deltas_[iv.lo] += delta;
  deltas_[iv.hi] -= delta;
}

void StepFunction::drop_before(double t) {
  const auto first_kept = deltas_.lower_bound(t);
  if (first_kept == deltas_.begin()) return;
  // Ascending partial fold — exactly the prefix every probe computes —
  // carried at the last folded breakpoint, so the elementary segment it
  // opened keeps its value and everything at or after it is unchanged.
  double folded = 0.0;
  double last_time = 0.0;
  for (auto it = deltas_.begin(); it != first_kept; ++it) {
    folded += it->second;
    last_time = it->first;
  }
  deltas_.erase(deltas_.begin(), first_kept);
  if (folded != 0.0) deltas_.emplace(last_time, folded);
}

double StepFunction::value_at(double t) const {
  double v = 0.0;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    v += delta;
  }
  return std::fabs(v) < kZeroEps ? 0.0 : v;
}

double StepFunction::max_value() const {
  double v = 0.0, best = 0.0;
  for (const auto& [time, delta] : deltas_) {
    v += delta;
    best = std::max(best, v);
  }
  return best;
}

double StepFunction::max_within(const Interval& window) const {
  double v = 0.0, best = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  for (const auto& [time, delta] : deltas_) {
    // The segment [prev, time) carries value v; breakpoints ascend, so
    // once a segment starts at or past the window nothing later overlaps.
    if (prev >= window.hi) break;
    if (time > window.lo && std::fabs(v) >= kZeroEps) best = std::max(best, v);
    v += delta;
    prev = time;
  }
  return best;
}

double StepFunction::integral() const {
  double v = 0.0, total = 0.0;
  double prev = 0.0;
  bool first = true;
  for (const auto& [time, delta] : deltas_) {
    if (!first) total += v * (time - prev);
    v += delta;
    prev = time;
    first = false;
  }
  return total;
}

double StepFunction::integrate_transformed(
    const Interval& window, const std::function<double(double)>& transform) const {
  double v = 0.0, total = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  for (const auto& [time, delta] : deltas_) {
    const Interval seg{prev, time};
    const Interval clip = seg.intersect(window);
    if (!clip.empty() && v > kZeroEps) total += transform(v) * clip.measure();
    v += delta;
    prev = time;
  }
  // Tail beyond the last breakpoint has value zero by construction.
  return total;
}

double StepFunction::positive_measure(const Interval& window, double eps) const {
  double v = 0.0, total = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  const double threshold = std::max(eps, kZeroEps);
  for (const auto& [time, delta] : deltas_) {
    const Interval clip = Interval{prev, time}.intersect(window);
    if (!clip.empty() && v > threshold) total += clip.measure();
    v += delta;
    prev = time;
  }
  return total;
}

double StepFunction::time_to_accumulate(double from, double volume) const {
  DCN_EXPECTS(volume >= 0.0);
  if (volume == 0.0) return from;
  double v = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  double remaining = volume;
  for (const auto& [time, delta] : deltas_) {
    if (time > from) {
      const double lo = std::max(prev, from);
      if (v > kZeroEps && time > lo) {
        const double chunk = v * (time - lo);
        if (chunk >= remaining - kZeroEps * volume) {
          return lo + remaining / v;
        }
        remaining -= chunk;
      }
    }
    v += delta;
    prev = time;
  }
  // Tail beyond the last breakpoint is zero: nothing more accumulates.
  return std::numeric_limits<double>::infinity();
}

double StepFunction::integral_between(double from, double to) const {
  if (to <= from) return 0.0;
  return integrate_transformed({from, to}, [](double x) { return x; });
}

std::vector<std::pair<Interval, double>> StepFunction::segments() const {
  std::vector<std::pair<Interval, double>> out;
  double v = 0.0;
  double prev = 0.0;
  bool have_prev = false;
  for (const auto& [time, delta] : deltas_) {
    if (have_prev && std::fabs(v) >= kZeroEps && time > prev) {
      if (!out.empty() && out.back().first.hi == prev &&
          std::fabs(out.back().second - v) < kZeroEps) {
        out.back().first.hi = time;  // merge equal-valued adjacent segments
      } else {
        out.emplace_back(Interval{prev, time}, v);
      }
    }
    v += delta;
    prev = time;
    have_prev = true;
  }
  return out;
}

bool StepFunction::is_zero() const {
  double v = 0.0;
  double prev = 0.0;
  bool have_prev = false;
  for (const auto& [time, delta] : deltas_) {
    if (have_prev && std::fabs(v) >= kZeroEps && time > prev) return false;
    v += delta;
    prev = time;
    have_prev = true;
  }
  return true;
}

// ---------------------------------------------------------------------------
// LoadProfile

void LoadProfile::add(const Interval& iv, double delta) {
  if (iv.empty() || delta == 0.0) return;
  DCN_EXPECTS(!(iv.lo < origin_));
  for (const auto& [t, d] : {std::pair{iv.lo, delta}, {iv.hi, -delta}}) {
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), t,
        [](const std::pair<double, double>& e, double x) { return e.first < x; });
    const std::size_t idx = static_cast<std::size_t>(it - entries_.begin());
    if (it != entries_.end() && it->first == t) {
      it->second += d;  // accumulate, exactly map's deltas_[t] += d
    } else {
      entries_.insert(it, {t, d});
    }
    clean_ = std::min(clean_, idx);
  }
}

std::size_t LoadProfile::upper_index(double t) const {
  const auto it = std::upper_bound(
      entries_.begin(), entries_.end(), t,
      [](double x, const std::pair<double, double>& e) { return x < e.first; });
  return static_cast<std::size_t>(it - entries_.begin());
}

void LoadProfile::refresh() const {
  const std::size_t n = entries_.size();
  if (clean_ >= n && prefix_.size() == n) return;
  prefix_.resize(n);
  // The prefix fold restarts at the last clean value — itself an exact
  // naive prefix — so every cached value equals the left-to-right fold
  // StepFunction performs, never a re-associated partial sum.
  double v = clean_ == 0 ? base_ : prefix_[clean_ - 1];
  for (std::size_t i = clean_; i < n; ++i) {
    v += entries_[i].second;
    prefix_[i] = v;
  }
  const std::size_t first_block = clean_ / kBlock;
  block_max_.resize((n + kBlock - 1) / kBlock);
  for (std::size_t b = first_block; b < block_max_.size(); ++b) {
    double best = -std::numeric_limits<double>::infinity();
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    for (std::size_t i = lo; i < hi; ++i) {
      const double before = value_before(i);
      if (std::fabs(before) >= kZeroEps) best = std::max(best, before);
    }
    block_max_[b] = best;
  }
  clean_ = n;
}

double LoadProfile::value_at(double t) const {
  DCN_EXPECTS(!(t < origin_));
  refresh();
  const std::size_t idx = upper_index(t);
  return snap_zero(idx == 0 ? base_ : prefix_[idx - 1]);
}

double LoadProfile::max_within(const Interval& window) const {
  DCN_EXPECTS(!(window.lo < origin_));
  refresh();
  const std::size_t n = entries_.size();
  double best = 0.0;
  // Replays StepFunction::max_within on the live region: the candidate
  // at breakpoint i is the value *before* it, considered when the
  // breakpoint is past window.lo and the segment start (the previous
  // breakpoint) is before window.hi. Every pruned breakpoint is at or
  // before window.lo (the contract above), so none of them would have
  // been a candidate; the straddling segment's value is base_, which is
  // entries_[0]'s value_before — the candidate set matches exactly.
  std::size_t i = upper_index(window.lo);
  while (i < n) {
    // Whole interior blocks come from the cache: alignment at a block
    // boundary, and the block's last entry not past window.hi, imply
    // every candidate in it is admissible (segment starts strictly
    // before window.hi because breakpoint times strictly increase).
    if (i % kBlock == 0 && i + kBlock <= n &&
        entries_[i + kBlock - 1].first <= window.hi) {
      best = std::max(best, block_max_[i / kBlock]);
      i += kBlock;
      continue;
    }
    const double prev = i == 0 ? origin_ : entries_[i - 1].first;
    if (prev >= window.hi) break;
    const double before = value_before(i);
    if (std::fabs(before) >= kZeroEps) best = std::max(best, before);
    ++i;
  }
  return best;
}

void LoadProfile::prune_before(double t) {
  if (!(t > origin_)) return;
  origin_ = t;
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), t,
      [](const std::pair<double, double>& e, double x) { return e.first < x; });
  const std::size_t cut = static_cast<std::size_t>(it - entries_.begin());
  if (cut == 0) return;
  // Ascending-order fold into base_: continues the exact left-to-right
  // prefix StepFunction computes, so post-prune probes stay bitwise.
  for (std::size_t i = 0; i < cut; ++i) base_ += entries_[i].second;
  entries_.erase(entries_.begin(), it);
  pruned_ += static_cast<std::int64_t>(cut);
  clean_ = 0;
}

}  // namespace dcn
