#include "common/piecewise.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dcn {

namespace {
// Values this close to zero are treated as zero when deciding whether a
// segment is "active": the difference representation accumulates float
// error when many flows start/stop at the same instant.
constexpr double kZeroEps = 1e-12;
}  // namespace

void StepFunction::add(const Interval& iv, double delta) {
  if (iv.empty() || delta == 0.0) return;
  deltas_[iv.lo] += delta;
  deltas_[iv.hi] -= delta;
}

double StepFunction::value_at(double t) const {
  double v = 0.0;
  for (const auto& [time, delta] : deltas_) {
    if (time > t) break;
    v += delta;
  }
  return std::fabs(v) < kZeroEps ? 0.0 : v;
}

double StepFunction::max_value() const {
  double v = 0.0, best = 0.0;
  for (const auto& [time, delta] : deltas_) {
    v += delta;
    best = std::max(best, v);
  }
  return best;
}

double StepFunction::max_within(const Interval& window) const {
  double v = 0.0, best = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  for (const auto& [time, delta] : deltas_) {
    // The segment [prev, time) carries value v; breakpoints ascend, so
    // once a segment starts at or past the window nothing later overlaps.
    if (prev >= window.hi) break;
    if (time > window.lo && std::fabs(v) >= kZeroEps) best = std::max(best, v);
    v += delta;
    prev = time;
  }
  return best;
}

double StepFunction::integral() const {
  double v = 0.0, total = 0.0;
  double prev = 0.0;
  bool first = true;
  for (const auto& [time, delta] : deltas_) {
    if (!first) total += v * (time - prev);
    v += delta;
    prev = time;
    first = false;
  }
  return total;
}

double StepFunction::integrate_transformed(
    const Interval& window, const std::function<double(double)>& transform) const {
  double v = 0.0, total = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  for (const auto& [time, delta] : deltas_) {
    const Interval seg{prev, time};
    const Interval clip = seg.intersect(window);
    if (!clip.empty() && v > kZeroEps) total += transform(v) * clip.measure();
    v += delta;
    prev = time;
  }
  // Tail beyond the last breakpoint has value zero by construction.
  return total;
}

double StepFunction::positive_measure(const Interval& window, double eps) const {
  double v = 0.0, total = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  const double threshold = std::max(eps, kZeroEps);
  for (const auto& [time, delta] : deltas_) {
    const Interval clip = Interval{prev, time}.intersect(window);
    if (!clip.empty() && v > threshold) total += clip.measure();
    v += delta;
    prev = time;
  }
  return total;
}

double StepFunction::time_to_accumulate(double from, double volume) const {
  DCN_EXPECTS(volume >= 0.0);
  if (volume == 0.0) return from;
  double v = 0.0;
  double prev = -std::numeric_limits<double>::infinity();
  double remaining = volume;
  for (const auto& [time, delta] : deltas_) {
    if (time > from) {
      const double lo = std::max(prev, from);
      if (v > kZeroEps && time > lo) {
        const double chunk = v * (time - lo);
        if (chunk >= remaining - kZeroEps * volume) {
          return lo + remaining / v;
        }
        remaining -= chunk;
      }
    }
    v += delta;
    prev = time;
  }
  // Tail beyond the last breakpoint is zero: nothing more accumulates.
  return std::numeric_limits<double>::infinity();
}

double StepFunction::integral_between(double from, double to) const {
  if (to <= from) return 0.0;
  return integrate_transformed({from, to}, [](double x) { return x; });
}

std::vector<std::pair<Interval, double>> StepFunction::segments() const {
  std::vector<std::pair<Interval, double>> out;
  double v = 0.0;
  double prev = 0.0;
  bool have_prev = false;
  for (const auto& [time, delta] : deltas_) {
    if (have_prev && std::fabs(v) >= kZeroEps && time > prev) {
      if (!out.empty() && out.back().first.hi == prev &&
          std::fabs(out.back().second - v) < kZeroEps) {
        out.back().first.hi = time;  // merge equal-valued adjacent segments
      } else {
        out.emplace_back(Interval{prev, time}, v);
      }
    }
    v += delta;
    prev = time;
    have_prev = true;
  }
  return out;
}

bool StepFunction::is_zero() const {
  double v = 0.0;
  double prev = 0.0;
  bool have_prev = false;
  for (const auto& [time, delta] : deltas_) {
    if (have_prev && std::fabs(v) >= kZeroEps && time > prev) return false;
    v += delta;
    prev = time;
    have_prev = true;
  }
  return true;
}

}  // namespace dcn
