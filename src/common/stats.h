// Streaming statistics for benchmark harnesses.
//
// The paper's Figure 2 reports means over 10 independent runs; the bench
// binaries additionally print standard deviations and 95% confidence
// half-widths so the reproduction quality is visible.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace dcn {

/// Welford single-pass accumulator for mean / variance.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Half-width of the 95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_halfwidth() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (nearest-rank); `q` in [0, 1].
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Formats "mean +/- ci95" with fixed precision for table printing.
[[nodiscard]] std::string format_mean_ci(const RunningStats& s, int precision = 3);

}  // namespace dcn
