#include "common/random.h"

#include <cmath>
#include <numbers>

#include "common/contracts.h"

namespace dcn {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix_seed(std::uint64_t seed, std::string_view label) {
  // FNV-1a over the label, folded into the seed, then one splitmix64
  // pass so nearby seeds / similar labels land far apart.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ULL;
  }
  std::uint64_t state = seed ^ h;
  (void)splitmix64(state);
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t state = seed;
  for (auto& s : s_) s = splitmix64(state);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  DCN_EXPECTS(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  DCN_EXPECTS(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v;
  do {
    v = (*this)();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller, one sample per call (the sibling sample is discarded to
  // keep the stream position independent of call pattern).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  DCN_EXPECTS(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    DCN_EXPECTS(w >= 0.0);
    total += w;
  }
  DCN_EXPECTS(total > 0.0);
  const double pick = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (pick < acc) return i;
  }
  // Float round-off can leave pick == total; return the last positive.
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::split() { return Rng((*this)()); }

}  // namespace dcn
