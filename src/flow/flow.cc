#include "flow/flow.h"

#include <algorithm>
#include <ostream>

namespace dcn {

std::ostream& operator<<(std::ostream& os, const Flow& flow) {
  return os << "flow#" << flow.id << "(" << flow.src << "->" << flow.dst
            << ", w=" << flow.volume << ", [" << flow.release << ", "
            << flow.deadline << "])";
}

void validate_flows(const Graph& g, const std::vector<Flow>& flows) {
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const Flow& fl = flows[i];
    DCN_EXPECTS(fl.id == static_cast<FlowId>(i));
    DCN_EXPECTS(g.valid_node(fl.src));
    DCN_EXPECTS(g.valid_node(fl.dst));
    DCN_EXPECTS(fl.src != fl.dst);
    DCN_EXPECTS(fl.volume > 0.0);
    DCN_EXPECTS(fl.release < fl.deadline);
  }
}

Interval flow_horizon(const std::vector<Flow>& flows) {
  DCN_EXPECTS(!flows.empty());
  double lo = flows.front().release;
  double hi = flows.front().deadline;
  for (const Flow& fl : flows) {
    lo = std::min(lo, fl.release);
    hi = std::max(hi, fl.deadline);
  }
  return {lo, hi};
}

double max_density(const std::vector<Flow>& flows) {
  double best = 0.0;
  for (const Flow& fl : flows) best = std::max(best, fl.density());
  return best;
}

}  // namespace dcn
