#include "flow/split.h"

#include "common/contracts.h"

namespace dcn {

SplitResult split_flows(const std::vector<Flow>& flows, std::int32_t ways) {
  DCN_EXPECTS(ways >= 1);
  SplitResult out;
  out.subflows.reserve(flows.size() * static_cast<std::size_t>(ways));
  out.parent.reserve(out.subflows.capacity());
  FlowId next = 0;
  for (const Flow& fl : flows) {
    DCN_EXPECTS(fl.volume > 0.0);
    const double piece = fl.volume / static_cast<double>(ways);
    for (std::int32_t k = 0; k < ways; ++k) {
      out.subflows.push_back(
          {next++, fl.src, fl.dst, piece, fl.release, fl.deadline});
      out.parent.push_back(fl.id);
    }
  }
  return out;
}

std::vector<double> aggregate_by_parent(const SplitResult& split,
                                        const std::vector<double>& per_subflow,
                                        std::size_t num_parents) {
  DCN_EXPECTS(per_subflow.size() == split.subflows.size());
  std::vector<double> out(num_parents, 0.0);
  for (std::size_t i = 0; i < per_subflow.size(); ++i) {
    const auto p = static_cast<std::size_t>(split.parent[i]);
    DCN_EXPECTS(p < num_parents);
    out[p] += per_subflow[i];
  }
  return out;
}

}  // namespace dcn
