// Workload generators.
//
// paper_workload() reproduces the traffic of the paper's numerical
// section (Sec. V-C): spans drawn uniformly inside [1, 100], volumes
// from N(10, 3) truncated positive, endpoints drawn uniformly from
// distinct host pairs. The other generators model the motivating
// application patterns from the introduction (partition-aggregate =
// incast, shuffle) and standard evaluation patterns (permutation),
// plus a slack-controlled generator for deadline-tightness studies.
#pragma once

#include <vector>

#include "common/random.h"
#include "flow/flow.h"
#include "topology/topology.h"

namespace dcn {

/// Parameters of the paper's random workload.
struct PaperWorkloadParams {
  std::int32_t num_flows = 100;
  double horizon_lo = 1.0;    // span endpoints drawn from [horizon_lo,
  double horizon_hi = 100.0;  //                            horizon_hi]
  double volume_mean = 10.0;  // N(10, 3) in the paper
  double volume_stddev = 3.0;
  double min_span = 1.0;      // redraw spans shorter than this
  double min_volume = 0.1;    // redraw volumes below this
};

/// The Sec. V-C workload on a topology's hosts.
[[nodiscard]] std::vector<Flow> paper_workload(const Topology& topo,
                                               const PaperWorkloadParams& params,
                                               Rng& rng);

/// Incast (partition-aggregate): `senders` distinct hosts all transmit
/// `volume` to one aggregator inside a common window — the
/// request/response pattern the paper's introduction motivates.
[[nodiscard]] std::vector<Flow> incast_workload(const Topology& topo,
                                                std::int32_t senders, double volume,
                                                Interval window, Rng& rng);

/// Shuffle: every host in a random `mappers`-subset sends `volume` to
/// every host in a disjoint `reducers`-subset, all in one window.
[[nodiscard]] std::vector<Flow> shuffle_workload(const Topology& topo,
                                                 std::int32_t mappers,
                                                 std::int32_t reducers, double volume,
                                                 Interval window, Rng& rng);

/// Random permutation: each selected host sends one flow to a distinct
/// partner; spans and volumes as in the paper workload.
[[nodiscard]] std::vector<Flow> permutation_workload(const Topology& topo,
                                                     std::int32_t pairs,
                                                     const PaperWorkloadParams& params,
                                                     Rng& rng);

/// Slack-controlled workload: releases uniform in the horizon, span
/// length chosen so that density = volume / span = volume /
/// (slack * volume / base_rate); slack = 1 means the deadline only just
/// permits transmitting at base_rate, larger slack loosens deadlines.
[[nodiscard]] std::vector<Flow> slack_workload(const Topology& topo,
                                               std::int32_t num_flows, double volume,
                                               double base_rate, double slack,
                                               Interval horizon, Rng& rng);

/// Flow-size models for the online arrival generator, shaped after the
/// published data-center traces the online-scheduling literature
/// evaluates on (RCD, DCoflow):
///   kFixed      every flow carries mean_volume exactly
///   kWebSearch  moderately heavy-tailed (bounded Pareto, shape 1.5 —
///               the DCTCP websearch query/response mix)
///   kHadoop     heavy-tailed (bounded Pareto, shape 1.1 — most flows
///               tiny, most bytes in rare elephants)
enum class SizeModel { kFixed, kWebSearch, kHadoop };

/// Parameters of the online (arrival-driven) workload.
struct OnlineWorkloadParams {
  std::int32_t num_flows = 40;
  /// Poisson arrival intensity: inter-arrival gaps ~ Exp(arrival_rate).
  double arrival_rate = 2.0;
  /// First arrival time (the horizon start).
  double start = 0.0;
  double mean_volume = 5.0;
  SizeModel size_model = SizeModel::kFixed;
  /// Deadline = release + max(min_span, slack * volume / base_rate):
  /// slack = 1 means the deadline only just permits base_rate.
  double slack = 2.0;
  double base_rate = 4.0;
  double min_span = 0.1;
};

/// Poisson arrival process: exactly `num_flows` flows with Exp(rate)
/// inter-arrival gaps, sizes drawn from `size_model` (scaled so kFixed
/// matches mean_volume), endpoints uniform over distinct host pairs,
/// deadlines at slack * volume / base_rate past the release. The
/// operationally relevant online regime: flows arrive over time and the
/// schedule must be re-planned on each arrival (src/online).
[[nodiscard]] std::vector<Flow> poisson_workload(const Topology& topo,
                                                 const OnlineWorkloadParams& params,
                                                 Rng& rng);

/// Pull-based form of poisson_workload: draws one flow per next() call
/// with an rng-consumption order identical to the materializing
/// generator (gap, endpoints, size — in that order), so a sustained
/// stream of 100k+ arrivals never exists as a vector and the k-th flow
/// it emits equals poisson_workload's k-th flow bit for bit on the same
/// seed (asserted by tests/event_stream_test.cc). `params.num_flows` is
/// ignored — the stream is unbounded; the caller decides when to stop
/// (flow ids count up from 0 and releases never decrease). `topo` must
/// outlive the generator.
class PoissonFlowGenerator {
 public:
  PoissonFlowGenerator(const Topology& topo, const OnlineWorkloadParams& params,
                       Rng rng);

  /// The next arrival. Sequential ids, non-decreasing releases.
  [[nodiscard]] Flow next();

  /// Flows emitted so far (== the next flow's id).
  [[nodiscard]] std::int64_t generated() const { return count_; }

  /// The rng stream after the draws so far (lets poisson_workload hand
  /// the advanced stream back to its caller).
  [[nodiscard]] const Rng& rng() const { return rng_; }

 private:
  const Topology* topo_;
  OnlineWorkloadParams params_;
  Rng rng_;
  std::int64_t count_ = 0;
  double t_;
};

}  // namespace dcn
