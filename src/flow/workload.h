// Workload generators.
//
// paper_workload() reproduces the traffic of the paper's numerical
// section (Sec. V-C): spans drawn uniformly inside [1, 100], volumes
// from N(10, 3) truncated positive, endpoints drawn uniformly from
// distinct host pairs. The other generators model the motivating
// application patterns from the introduction (partition-aggregate =
// incast, shuffle) and standard evaluation patterns (permutation),
// plus a slack-controlled generator for deadline-tightness studies.
#pragma once

#include <vector>

#include "common/random.h"
#include "flow/flow.h"
#include "topology/topology.h"

namespace dcn {

/// Parameters of the paper's random workload.
struct PaperWorkloadParams {
  std::int32_t num_flows = 100;
  double horizon_lo = 1.0;    // span endpoints drawn from [horizon_lo,
  double horizon_hi = 100.0;  //                            horizon_hi]
  double volume_mean = 10.0;  // N(10, 3) in the paper
  double volume_stddev = 3.0;
  double min_span = 1.0;      // redraw spans shorter than this
  double min_volume = 0.1;    // redraw volumes below this
};

/// The Sec. V-C workload on a topology's hosts.
[[nodiscard]] std::vector<Flow> paper_workload(const Topology& topo,
                                               const PaperWorkloadParams& params,
                                               Rng& rng);

/// Incast (partition-aggregate): `senders` distinct hosts all transmit
/// `volume` to one aggregator inside a common window — the
/// request/response pattern the paper's introduction motivates.
[[nodiscard]] std::vector<Flow> incast_workload(const Topology& topo,
                                                std::int32_t senders, double volume,
                                                Interval window, Rng& rng);

/// Shuffle: every host in a random `mappers`-subset sends `volume` to
/// every host in a disjoint `reducers`-subset, all in one window.
[[nodiscard]] std::vector<Flow> shuffle_workload(const Topology& topo,
                                                 std::int32_t mappers,
                                                 std::int32_t reducers, double volume,
                                                 Interval window, Rng& rng);

/// Random permutation: each selected host sends one flow to a distinct
/// partner; spans and volumes as in the paper workload.
[[nodiscard]] std::vector<Flow> permutation_workload(const Topology& topo,
                                                     std::int32_t pairs,
                                                     const PaperWorkloadParams& params,
                                                     Rng& rng);

/// Slack-controlled workload: releases uniform in the horizon, span
/// length chosen so that density = volume / span = volume /
/// (slack * volume / base_rate); slack = 1 means the deadline only just
/// permits transmitting at base_rate, larger slack loosens deadlines.
[[nodiscard]] std::vector<Flow> slack_workload(const Topology& topo,
                                               std::int32_t num_flows, double volume,
                                               double base_rate, double slack,
                                               Interval horizon, Rng& rng);

}  // namespace dcn
