// Flow splitting — the paper's multipath hook (Sec. II-B):
// "multi-path routing protocols can be incorporated in our model by
// splitting a big flow into many small flows with the same release time
// and deadline at the source end and each of the small flows will
// follow a single path."
//
// split_flows() turns every flow into `ways` subflows of volume w/ways
// sharing the parent's endpoints and span; merge_subflow_schedule()
// folds a schedule over subflows back into per-parent reporting. As
// `ways` grows, Random-Schedule's rounding approaches its fractional
// relaxation (each subflow rounds independently), trading rounding
// variance for per-packet-reordering cost at the destination — the
// trade the paper alludes to. Quantified by bench_ablation_split.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow.h"

namespace dcn {

/// Mapping from subflows back to their parents.
struct SplitResult {
  std::vector<Flow> subflows;          // ids renumbered 0..N-1
  std::vector<FlowId> parent;          // parent[i] = original flow id
};

/// Splits every flow into `ways` equal subflows (volume w_i / ways,
/// same src/dst/span). ways = 1 returns a renumbered copy.
[[nodiscard]] SplitResult split_flows(const std::vector<Flow>& flows,
                                      std::int32_t ways);

/// Per-parent delivered volume, aggregated from a per-subflow delivered
/// vector (e.g. ReplayReport::delivered).
[[nodiscard]] std::vector<double> aggregate_by_parent(
    const SplitResult& split, const std::vector<double>& per_subflow,
    std::size_t num_parents);

}  // namespace dcn
