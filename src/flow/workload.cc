#include "flow/workload.h"

#include <algorithm>

#include "common/contracts.h"

namespace dcn {

namespace {

/// Two distinct hosts drawn uniformly.
std::pair<NodeId, NodeId> random_host_pair(const Topology& topo, Rng& rng) {
  const auto& hosts = topo.hosts();
  DCN_EXPECTS(hosts.size() >= 2);
  const auto a = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
  std::size_t b;
  do {
    b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
  } while (b == a);
  return {hosts[a], hosts[b]};
}

/// Positive volume from a truncated normal (redraw below min_volume).
double truncated_normal_volume(double mean, double stddev, double min_volume,
                               Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double v = rng.normal(mean, stddev);
    if (v >= min_volume) return v;
  }
  return min_volume;  // pathological parameters; fall back deterministically
}

/// Span with both endpoints uniform in [lo, hi], at least min_span long.
Interval random_span(double lo, double hi, double min_span, Rng& rng) {
  DCN_EXPECTS(hi - lo > min_span);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double a = rng.uniform(lo, hi);
    double b = rng.uniform(lo, hi);
    if (a > b) std::swap(a, b);
    if (b - a >= min_span) return {a, b};
  }
  return {lo, hi};
}

/// `count` distinct host indices.
std::vector<NodeId> sample_hosts(const Topology& topo, std::int32_t count, Rng& rng) {
  DCN_EXPECTS(count <= topo.num_hosts());
  std::vector<NodeId> pool = topo.hosts();
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::int32_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(count));
  return pool;
}

}  // namespace

std::vector<Flow> paper_workload(const Topology& topo,
                                 const PaperWorkloadParams& params, Rng& rng) {
  DCN_EXPECTS(params.num_flows > 0);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(params.num_flows));
  for (std::int32_t i = 0; i < params.num_flows; ++i) {
    const auto [src, dst] = random_host_pair(topo, rng);
    const Interval span =
        random_span(params.horizon_lo, params.horizon_hi, params.min_span, rng);
    const double volume = truncated_normal_volume(
        params.volume_mean, params.volume_stddev, params.min_volume, rng);
    flows.push_back({i, src, dst, volume, span.lo, span.hi});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> incast_workload(const Topology& topo, std::int32_t senders,
                                  double volume, Interval window, Rng& rng) {
  DCN_EXPECTS(senders >= 1);
  DCN_EXPECTS(senders + 1 <= topo.num_hosts());
  DCN_EXPECTS(volume > 0.0);
  DCN_EXPECTS(!window.empty());
  std::vector<NodeId> chosen = sample_hosts(topo, senders + 1, rng);
  const NodeId aggregator = chosen.back();
  chosen.pop_back();
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(senders));
  for (std::int32_t i = 0; i < senders; ++i) {
    flows.push_back({i, chosen[static_cast<std::size_t>(i)], aggregator, volume,
                     window.lo, window.hi});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> shuffle_workload(const Topology& topo, std::int32_t mappers,
                                   std::int32_t reducers, double volume,
                                   Interval window, Rng& rng) {
  DCN_EXPECTS(mappers >= 1);
  DCN_EXPECTS(reducers >= 1);
  DCN_EXPECTS(mappers + reducers <= topo.num_hosts());
  DCN_EXPECTS(volume > 0.0);
  DCN_EXPECTS(!window.empty());
  std::vector<NodeId> chosen = sample_hosts(topo, mappers + reducers, rng);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(mappers) * static_cast<std::size_t>(reducers));
  FlowId id = 0;
  for (std::int32_t m = 0; m < mappers; ++m) {
    for (std::int32_t r = 0; r < reducers; ++r) {
      flows.push_back({id++, chosen[static_cast<std::size_t>(m)],
                       chosen[static_cast<std::size_t>(mappers + r)], volume,
                       window.lo, window.hi});
    }
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> permutation_workload(const Topology& topo, std::int32_t pairs,
                                       const PaperWorkloadParams& params, Rng& rng) {
  DCN_EXPECTS(pairs >= 1);
  DCN_EXPECTS(2 * pairs <= topo.num_hosts());
  std::vector<NodeId> chosen = sample_hosts(topo, 2 * pairs, rng);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(pairs));
  for (std::int32_t i = 0; i < pairs; ++i) {
    const Interval span =
        random_span(params.horizon_lo, params.horizon_hi, params.min_span, rng);
    const double volume = truncated_normal_volume(
        params.volume_mean, params.volume_stddev, params.min_volume, rng);
    flows.push_back({i, chosen[static_cast<std::size_t>(2 * i)],
                     chosen[static_cast<std::size_t>(2 * i + 1)], volume, span.lo,
                     span.hi});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> slack_workload(const Topology& topo, std::int32_t num_flows,
                                 double volume, double base_rate, double slack,
                                 Interval horizon, Rng& rng) {
  DCN_EXPECTS(num_flows >= 1);
  DCN_EXPECTS(volume > 0.0);
  DCN_EXPECTS(base_rate > 0.0);
  DCN_EXPECTS(slack >= 1.0);
  const double span_len = slack * volume / base_rate;
  DCN_EXPECTS(span_len < horizon.measure());
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(num_flows));
  for (std::int32_t i = 0; i < num_flows; ++i) {
    const auto [src, dst] = random_host_pair(topo, rng);
    const double release = rng.uniform(horizon.lo, horizon.hi - span_len);
    flows.push_back({i, src, dst, volume, release, release + span_len});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

}  // namespace dcn
