#include "flow/workload.h"

#include <algorithm>
#include <cmath>

#include "common/contracts.h"

namespace dcn {

namespace {

/// Two distinct hosts drawn uniformly.
std::pair<NodeId, NodeId> random_host_pair(const Topology& topo, Rng& rng) {
  const auto& hosts = topo.hosts();
  DCN_EXPECTS(hosts.size() >= 2);
  const auto a = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
  std::size_t b;
  do {
    b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(hosts.size()) - 1));
  } while (b == a);
  return {hosts[a], hosts[b]};
}

/// Positive volume from a truncated normal (redraw below min_volume).
double truncated_normal_volume(double mean, double stddev, double min_volume,
                               Rng& rng) {
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const double v = rng.normal(mean, stddev);
    if (v >= min_volume) return v;
  }
  return min_volume;  // pathological parameters; fall back deterministically
}

/// Span with both endpoints uniform in [lo, hi], at least min_span long.
Interval random_span(double lo, double hi, double min_span, Rng& rng) {
  DCN_EXPECTS(hi - lo > min_span);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    double a = rng.uniform(lo, hi);
    double b = rng.uniform(lo, hi);
    if (a > b) std::swap(a, b);
    if (b - a >= min_span) return {a, b};
  }
  return {lo, hi};
}

/// `count` distinct host indices.
std::vector<NodeId> sample_hosts(const Topology& topo, std::int32_t count, Rng& rng) {
  DCN_EXPECTS(count <= topo.num_hosts());
  std::vector<NodeId> pool = topo.hosts();
  // Partial Fisher-Yates: the first `count` entries become the sample.
  for (std::int32_t i = 0; i < count; ++i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(i, static_cast<std::int64_t>(pool.size()) - 1));
    std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
  }
  pool.resize(static_cast<std::size_t>(count));
  return pool;
}

}  // namespace

std::vector<Flow> paper_workload(const Topology& topo,
                                 const PaperWorkloadParams& params, Rng& rng) {
  DCN_EXPECTS(params.num_flows > 0);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(params.num_flows));
  for (std::int32_t i = 0; i < params.num_flows; ++i) {
    const auto [src, dst] = random_host_pair(topo, rng);
    const Interval span =
        random_span(params.horizon_lo, params.horizon_hi, params.min_span, rng);
    const double volume = truncated_normal_volume(
        params.volume_mean, params.volume_stddev, params.min_volume, rng);
    flows.push_back({i, src, dst, volume, span.lo, span.hi});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> incast_workload(const Topology& topo, std::int32_t senders,
                                  double volume, Interval window, Rng& rng) {
  DCN_EXPECTS(senders >= 1);
  DCN_EXPECTS(senders + 1 <= topo.num_hosts());
  DCN_EXPECTS(volume > 0.0);
  DCN_EXPECTS(!window.empty());
  std::vector<NodeId> chosen = sample_hosts(topo, senders + 1, rng);
  const NodeId aggregator = chosen.back();
  chosen.pop_back();
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(senders));
  for (std::int32_t i = 0; i < senders; ++i) {
    flows.push_back({i, chosen[static_cast<std::size_t>(i)], aggregator, volume,
                     window.lo, window.hi});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> shuffle_workload(const Topology& topo, std::int32_t mappers,
                                   std::int32_t reducers, double volume,
                                   Interval window, Rng& rng) {
  DCN_EXPECTS(mappers >= 1);
  DCN_EXPECTS(reducers >= 1);
  DCN_EXPECTS(mappers + reducers <= topo.num_hosts());
  DCN_EXPECTS(volume > 0.0);
  DCN_EXPECTS(!window.empty());
  std::vector<NodeId> chosen = sample_hosts(topo, mappers + reducers, rng);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(mappers) * static_cast<std::size_t>(reducers));
  FlowId id = 0;
  for (std::int32_t m = 0; m < mappers; ++m) {
    for (std::int32_t r = 0; r < reducers; ++r) {
      flows.push_back({id++, chosen[static_cast<std::size_t>(m)],
                       chosen[static_cast<std::size_t>(mappers + r)], volume,
                       window.lo, window.hi});
    }
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> permutation_workload(const Topology& topo, std::int32_t pairs,
                                       const PaperWorkloadParams& params, Rng& rng) {
  DCN_EXPECTS(pairs >= 1);
  DCN_EXPECTS(2 * pairs <= topo.num_hosts());
  std::vector<NodeId> chosen = sample_hosts(topo, 2 * pairs, rng);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(pairs));
  for (std::int32_t i = 0; i < pairs; ++i) {
    const Interval span =
        random_span(params.horizon_lo, params.horizon_hi, params.min_span, rng);
    const double volume = truncated_normal_volume(
        params.volume_mean, params.volume_stddev, params.min_volume, rng);
    flows.push_back({i, chosen[static_cast<std::size_t>(2 * i)],
                     chosen[static_cast<std::size_t>(2 * i + 1)], volume, span.lo,
                     span.hi});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

std::vector<Flow> slack_workload(const Topology& topo, std::int32_t num_flows,
                                 double volume, double base_rate, double slack,
                                 Interval horizon, Rng& rng) {
  DCN_EXPECTS(num_flows >= 1);
  DCN_EXPECTS(volume > 0.0);
  DCN_EXPECTS(base_rate > 0.0);
  DCN_EXPECTS(slack >= 1.0);
  const double span_len = slack * volume / base_rate;
  DCN_EXPECTS(span_len < horizon.measure());
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(num_flows));
  for (std::int32_t i = 0; i < num_flows; ++i) {
    const auto [src, dst] = random_host_pair(topo, rng);
    const double release = rng.uniform(horizon.lo, horizon.hi - span_len);
    flows.push_back({i, src, dst, volume, release, release + span_len});
  }
  validate_flows(topo.graph(), flows);
  return flows;
}

namespace {

/// Bounded Pareto on [lo, hi] with tail index `shape` via inverse-CDF.
double bounded_pareto(double lo, double hi, double shape, Rng& rng) {
  const double u = rng.uniform();
  const double ratio = std::pow(lo / hi, shape);
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / shape);
}

/// E[bounded Pareto(lo, hi, shape)] for shape != 1.
double bounded_pareto_mean(double lo, double hi, double shape) {
  const double r = lo / hi;
  return lo * (shape / (shape - 1.0)) * (1.0 - std::pow(r, shape - 1.0)) /
         (1.0 - std::pow(r, shape));
}

/// One flow size under `model`. The heavy-tailed models match the
/// *shape* of the published traces, not the byte-exact CDFs; samples
/// are rescaled by the analytic bounded-Pareto mean so E[size] == mean
/// for every model — identical offered load, different tails.
double sample_size(SizeModel model, double mean, Rng& rng) {
  double lo = 0.0;
  double hi = 0.0;
  double shape = 0.0;
  switch (model) {
    case SizeModel::kFixed:
      return mean;
    case SizeModel::kWebSearch:
      // Shape 1.5: median well under the mean, occasional multi-x
      // elephants — the DCTCP websearch mix.
      lo = mean / 5.0;
      hi = 8.0 * mean;
      shape = 1.5;
      break;
    case SizeModel::kHadoop:
      // Shape 1.1: the vast majority of flows are mice, the vast
      // majority of bytes ride rare elephants.
      lo = mean / 20.0;
      hi = 40.0 * mean;
      shape = 1.1;
      break;
  }
  return bounded_pareto(lo, hi, shape, rng) * mean /
         bounded_pareto_mean(lo, hi, shape);
}

}  // namespace

PoissonFlowGenerator::PoissonFlowGenerator(const Topology& topo,
                                           const OnlineWorkloadParams& params,
                                           Rng rng)
    : topo_(&topo), params_(params), rng_(rng), t_(params.start) {
  DCN_EXPECTS(params_.arrival_rate > 0.0);
  DCN_EXPECTS(params_.mean_volume > 0.0);
  DCN_EXPECTS(params_.slack >= 1.0);
  DCN_EXPECTS(params_.base_rate > 0.0);
  DCN_EXPECTS(params_.min_span > 0.0);
}

Flow PoissonFlowGenerator::next() {
  if (count_ > 0) {
    // Exponential inter-arrival gap (inverse-CDF; uniform() < 1 keeps
    // the log argument positive).
    t_ += -std::log(1.0 - rng_.uniform()) / params_.arrival_rate;
  }
  const auto [src, dst] = random_host_pair(*topo_, rng_);
  const double volume =
      sample_size(params_.size_model, params_.mean_volume, rng_);
  const double span =
      std::max(params_.min_span, params_.slack * volume / params_.base_rate);
  return {static_cast<FlowId>(count_++), src, dst, volume, t_, t_ + span};
}

std::vector<Flow> poisson_workload(const Topology& topo,
                                   const OnlineWorkloadParams& params, Rng& rng) {
  DCN_EXPECTS(params.num_flows >= 1);
  // The pull-based generator IS the definition: the materialized trace
  // is num_flows pulls, with the advanced rng stream handed back.
  PoissonFlowGenerator gen(topo, params, rng);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(params.num_flows));
  for (std::int32_t i = 0; i < params.num_flows; ++i) {
    flows.push_back(gen.next());
  }
  rng = gen.rng();
  validate_flows(topo.graph(), flows);
  return flows;
}

}  // namespace dcn
