// Deadline-constrained flows (Sec. II-B of the paper).
//
// A flow j_i = (w_i, r_i, d_i, p_i, q_i) must move w_i units of data
// from host p_i to host q_i inside its span [r_i, d_i]. Preemption is
// allowed; each flow follows a single path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/contracts.h"
#include "common/interval.h"
#include "graph/graph.h"

namespace dcn {

using FlowId = std::int32_t;

struct Flow {
  FlowId id = -1;
  NodeId src = kInvalidNode;   // p_i
  NodeId dst = kInvalidNode;   // q_i
  double volume = 0.0;         // w_i
  double release = 0.0;        // r_i
  double deadline = 0.0;       // d_i

  /// The span S_i = [r_i, d_i].
  [[nodiscard]] Interval span() const { return {release, deadline}; }

  /// The density D_i = w_i / (d_i - r_i): the minimum average rate that
  /// still meets the deadline.
  [[nodiscard]] double density() const {
    DCN_EXPECTS(deadline > release);
    return volume / (deadline - release);
  }

  /// True when the flow is active at time t (t in S_i).
  [[nodiscard]] bool active_at(double t) const {
    return t >= release && t < deadline;
  }

  friend bool operator==(const Flow&, const Flow&) = default;
};

std::ostream& operator<<(std::ostream& os, const Flow& flow);

/// Validates a flow set against a graph: positive volumes, release <
/// deadline, distinct valid endpoints, ids equal to vector positions.
/// Throws ContractViolation on the first violation.
void validate_flows(const Graph& g, const std::vector<Flow>& flows);

/// The horizon [T0, T1] spanned by a flow set: [min release, max deadline].
[[nodiscard]] Interval flow_horizon(const std::vector<Flow>& flows);

/// Maximum flow density (the D of Theorem 6's bound).
[[nodiscard]] double max_density(const std::vector<Flow>& flows);

}  // namespace dcn
