#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

Topology random_fabric(std::int32_t switches, std::int32_t extra_edges,
                       std::int32_t hosts_per_switch, Rng& rng) {
  DCN_EXPECTS(switches >= 3);
  DCN_EXPECTS(extra_edges >= 0);
  DCN_EXPECTS(hosts_per_switch >= 0);

  Graph g(switches);
  std::set<std::pair<NodeId, NodeId>> used;
  // Ring keeps the fabric connected regardless of the random chords.
  for (NodeId u = 0; u < switches; ++u) {
    const NodeId v = (u + 1) % switches;
    g.add_bidirectional_edge(u, v);
    used.insert({std::min(u, v), std::max(u, v)});
  }
  std::int32_t added = 0;
  std::int32_t attempts = 0;
  const std::int32_t max_attempts = 50 * (extra_edges + 1);
  while (added < extra_edges && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<NodeId>(rng.uniform_int(0, switches - 1));
    const auto v = static_cast<NodeId>(rng.uniform_int(0, switches - 1));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (!used.insert(key).second) continue;
    g.add_bidirectional_edge(u, v);
    ++added;
  }

  std::vector<NodeId> hosts;
  hosts.reserve(static_cast<std::size_t>(switches * hosts_per_switch));
  for (NodeId sw = 0; sw < switches; ++sw) {
    for (std::int32_t h = 0; h < hosts_per_switch; ++h) {
      const NodeId host = g.add_node();
      g.add_bidirectional_edge(host, sw);
      hosts.push_back(host);
    }
  }
  return Topology("random_fabric(s=" + std::to_string(switches) + ",x=" +
                      std::to_string(added) + ",h=" + std::to_string(hosts_per_switch) + ")",
                  std::move(g), std::move(hosts));
}

}  // namespace dcn
