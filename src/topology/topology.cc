#include "topology/topology.h"

#include <utility>

#include "common/contracts.h"

namespace dcn {

Topology::Topology(std::string name, Graph graph, std::vector<NodeId> hosts)
    : name_(std::move(name)), graph_(std::move(graph)), hosts_(std::move(hosts)) {
  is_host_.assign(static_cast<std::size_t>(graph_.num_nodes()), false);
  for (NodeId h : hosts_) {
    DCN_EXPECTS(graph_.valid_node(h));
    is_host_[static_cast<std::size_t>(h)] = true;
  }
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  out.reserve(static_cast<std::size_t>(num_switches()));
  for (NodeId u = 0; u < graph_.num_nodes(); ++u) {
    if (!is_host_[static_cast<std::size_t>(u)]) out.push_back(u);
  }
  return out;
}

bool Topology::is_host(NodeId u) const {
  DCN_EXPECTS(graph_.valid_node(u));
  return is_host_[static_cast<std::size_t>(u)];
}

}  // namespace dcn
