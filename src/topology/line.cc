#include <string>
#include <vector>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

Topology line_network(std::int32_t n) {
  DCN_EXPECTS(n >= 2);
  Graph g(n);
  for (NodeId u = 0; u + 1 < n; ++u) g.add_bidirectional_edge(u, u + 1);
  std::vector<NodeId> hosts(static_cast<std::size_t>(n));
  for (NodeId u = 0; u < n; ++u) hosts[static_cast<std::size_t>(u)] = u;
  return Topology("line(" + std::to_string(n) + ")", std::move(g), std::move(hosts));
}

}  // namespace dcn
