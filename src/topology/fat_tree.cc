#include <string>
#include <vector>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

Topology fat_tree(std::int32_t k) {
  DCN_EXPECTS(k >= 2);
  DCN_EXPECTS(k % 2 == 0);
  const std::int32_t half = k / 2;
  const std::int32_t n_core = half * half;
  const std::int32_t n_agg = k * half;    // k pods * k/2 agg each
  const std::int32_t n_edge = k * half;   // k pods * k/2 edge each
  const std::int32_t n_hosts = n_edge * half;

  Graph g(n_core + n_agg + n_edge + n_hosts);
  // Node id layout: [0, n_core) core, then agg, then edge, then hosts.
  const NodeId core0 = 0;
  const NodeId agg0 = n_core;
  const NodeId edge0 = n_core + n_agg;
  const NodeId host0 = n_core + n_agg + n_edge;

  auto agg_id = [&](std::int32_t pod, std::int32_t i) { return agg0 + pod * half + i; };
  auto edge_id = [&](std::int32_t pod, std::int32_t i) { return edge0 + pod * half + i; };

  for (std::int32_t pod = 0; pod < k; ++pod) {
    // Edge <-> agg: full bipartite inside the pod.
    for (std::int32_t e = 0; e < half; ++e) {
      for (std::int32_t a = 0; a < half; ++a) {
        g.add_bidirectional_edge(edge_id(pod, e), agg_id(pod, a));
      }
    }
    // Agg i <-> core group i: agg switch i serves cores [i*half, (i+1)*half).
    for (std::int32_t a = 0; a < half; ++a) {
      for (std::int32_t c = 0; c < half; ++c) {
        g.add_bidirectional_edge(agg_id(pod, a), core0 + a * half + c);
      }
    }
  }

  std::vector<NodeId> hosts;
  hosts.reserve(static_cast<std::size_t>(n_hosts));
  for (std::int32_t e = 0; e < n_edge; ++e) {
    for (std::int32_t h = 0; h < half; ++h) {
      const NodeId host = host0 + e * half + h;
      g.add_bidirectional_edge(host, edge0 + e);
      hosts.push_back(host);
    }
  }

  DCN_ENSURES(static_cast<std::int32_t>(hosts.size()) == n_hosts);
  return Topology("fat_tree(k=" + std::to_string(k) + ")", std::move(g),
                  std::move(hosts));
}

}  // namespace dcn
