#include <string>
#include <vector>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

Topology leaf_spine(std::int32_t leaves, std::int32_t spines,
                    std::int32_t hosts_per_leaf) {
  DCN_EXPECTS(leaves >= 1);
  DCN_EXPECTS(spines >= 1);
  DCN_EXPECTS(hosts_per_leaf >= 1);

  Graph g(leaves + spines + leaves * hosts_per_leaf);
  // Layout: spines [0, spines), leaves, hosts.
  const NodeId leaf0 = spines;
  const NodeId host0 = spines + leaves;

  for (std::int32_t l = 0; l < leaves; ++l) {
    for (std::int32_t s = 0; s < spines; ++s) {
      g.add_bidirectional_edge(leaf0 + l, s);
    }
  }
  std::vector<NodeId> hosts;
  hosts.reserve(static_cast<std::size_t>(leaves * hosts_per_leaf));
  for (std::int32_t l = 0; l < leaves; ++l) {
    for (std::int32_t h = 0; h < hosts_per_leaf; ++h) {
      const NodeId host = host0 + l * hosts_per_leaf + h;
      g.add_bidirectional_edge(host, leaf0 + l);
      hosts.push_back(host);
    }
  }
  return Topology("leaf_spine(" + std::to_string(leaves) + "x" +
                      std::to_string(spines) + ",h=" + std::to_string(hosts_per_leaf) + ")",
                  std::move(g), std::move(hosts));
}

}  // namespace dcn
