#include <string>
#include <vector>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

Topology parallel_links(std::int32_t k) {
  DCN_EXPECTS(k >= 1);
  Graph g(2);
  for (std::int32_t i = 0; i < k; ++i) g.add_bidirectional_edge(0, 1);
  return Topology("parallel(" + std::to_string(k) + ")", std::move(g), {0, 1});
}

}  // namespace dcn
