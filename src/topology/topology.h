// A data-center topology: a graph plus the host/switch partition.
//
// All builders produce bidirectional (paired directed) edges and mark
// which nodes are hosts (traffic sources/sinks) versus switches. The
// paper's evaluation network is fat_tree(8): 80 switches, 128 hosts.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.h"

namespace dcn {

class Topology {
 public:
  Topology(std::string name, Graph graph, std::vector<NodeId> hosts);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const Graph& graph() const { return graph_; }
  /// Nodes that generate / absorb traffic.
  [[nodiscard]] const std::vector<NodeId>& hosts() const { return hosts_; }
  /// Nodes that only forward.
  [[nodiscard]] std::vector<NodeId> switches() const;

  [[nodiscard]] bool is_host(NodeId u) const;

  [[nodiscard]] std::int32_t num_hosts() const {
    return static_cast<std::int32_t>(hosts_.size());
  }
  [[nodiscard]] std::int32_t num_switches() const {
    return graph_.num_nodes() - num_hosts();
  }

 private:
  std::string name_;
  Graph graph_;
  std::vector<NodeId> hosts_;
  std::vector<bool> is_host_;
};

}  // namespace dcn
