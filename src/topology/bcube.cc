#include <string>
#include <vector>

#include "common/contracts.h"
#include "topology/builders.h"

namespace dcn {

Topology bcube(std::int32_t n, std::int32_t levels) {
  DCN_EXPECTS(n >= 2);
  DCN_EXPECTS(levels >= 0);
  // Hosts are addressed by (levels+1) base-n digits; n^(levels+1) total.
  std::int64_t n_hosts64 = 1;
  for (std::int32_t l = 0; l <= levels; ++l) n_hosts64 *= n;
  DCN_EXPECTS(n_hosts64 <= 1 << 20);
  const auto n_hosts = static_cast<std::int32_t>(n_hosts64);
  const std::int32_t switches_per_level = n_hosts / n;

  Graph g(n_hosts + (levels + 1) * switches_per_level);
  // Layout: hosts [0, n_hosts), then level-0 switches, level-1, ...
  const NodeId switch0 = n_hosts;

  // Host h connects at level l to the switch indexed by h's digits with
  // digit l removed.
  for (NodeId h = 0; h < n_hosts; ++h) {
    for (std::int32_t l = 0; l <= levels; ++l) {
      std::int32_t stride = 1;
      for (std::int32_t i = 0; i < l; ++i) stride *= n;
      const std::int32_t low = h % stride;
      const std::int32_t high = h / (stride * n);
      const std::int32_t sw_index = high * stride + low;
      const NodeId sw = switch0 + l * switches_per_level + sw_index;
      g.add_bidirectional_edge(h, sw);
    }
  }

  std::vector<NodeId> hosts(static_cast<std::size_t>(n_hosts));
  for (NodeId h = 0; h < n_hosts; ++h) hosts[static_cast<std::size_t>(h)] = h;
  return Topology("bcube(n=" + std::to_string(n) + ",levels=" + std::to_string(levels) + ")",
                  std::move(g), std::move(hosts));
}

}  // namespace dcn
