// Topology builders.
#pragma once

#include <cstdint>

#include "common/random.h"
#include "topology/topology.h"

namespace dcn {

/// Three-layer fat-tree with parameter k (even, >= 2):
/// (k/2)^2 core + k/2 agg + k/2 edge switches per pod across k pods, and
/// k/2 hosts per edge switch — k^3/4 hosts total. fat_tree(8) is the
/// paper's evaluation network: 80 switches, 128 hosts.
[[nodiscard]] Topology fat_tree(std::int32_t k);

/// BCube(n, levels): recursively defined server-centric topology with
/// n^(levels+1) hosts and (levels+1) * n^levels switches; host h at level
/// l connects to the switch whose index is h with digit l removed.
[[nodiscard]] Topology bcube(std::int32_t n, std::int32_t levels);

/// Two-layer leaf-spine: every leaf connects to every spine;
/// hosts_per_leaf hosts hang off each leaf.
[[nodiscard]] Topology leaf_spine(std::int32_t leaves, std::int32_t spines,
                                  std::int32_t hosts_per_leaf);

/// A line (path) network of n nodes; every node is a host. line(3) is
/// the Fig. 1 / Example 1 network A - B - C.
[[nodiscard]] Topology line_network(std::int32_t n);

/// The NP-hardness gadget of Theorems 2/3: two hosts connected by k
/// parallel (bidirectional) links.
[[nodiscard]] Topology parallel_links(std::int32_t k);

/// Random connected switch fabric: a ring of `switches` plus
/// `extra_edges` random chords, with `hosts_per_switch` hosts each.
/// Deterministic for a given rng state.
[[nodiscard]] Topology random_fabric(std::int32_t switches, std::int32_t extra_edges,
                                     std::int32_t hosts_per_switch, Rng& rng);

}  // namespace dcn
