// The link power model of Eq. 1 and its derived quantities.
//
//   f(x) = 0                     if x = 0
//   f(x) = sigma + mu * x^alpha  if 0 < x <= capacity     (alpha > 1)
//
// sigma is the idle power for keeping the link up, mu*x^alpha the
// superadditive dynamic (speed-scaling) power. The model combines the
// power-down strategy (f(0) = 0: a link that never carries traffic in
// the horizon can be switched off) with speed scaling.
//
// Derived quantities used throughout the paper:
//  * g(x) = mu * x^alpha — dynamic power only (Sec. III drops sigma for
//    links that are active anyway).
//  * power rate f(x)/x — energy per unit of traffic (Definition 3).
//  * R_opt = (sigma / (mu * (alpha - 1)))^(1/alpha) — the rate that
//    minimizes the power rate (Lemma 3).
//  * the convex envelope of f — linear through the origin with slope
//    f(R_hat)/R_hat up to R_hat = min(R_opt, capacity), then f itself.
//    This is the tightest convex lower bound of f; the fractional
//    multi-commodity relaxation (and hence the paper's LB curve) is
//    computed against it.
#pragma once

#include <limits>

#include "common/contracts.h"

namespace dcn {

class PowerModel {
 public:
  /// sigma >= 0, mu > 0, alpha > 1, capacity > 0 (may be +infinity).
  PowerModel(double sigma, double mu, double alpha,
             double capacity = std::numeric_limits<double>::infinity());

  /// Pure speed-scaling model x^alpha (the paper's numerical section
  /// uses x^2 and x^4: sigma = 0, mu = 1).
  static PowerModel pure_speed_scaling(double alpha);

  [[nodiscard]] double sigma() const { return sigma_; }
  [[nodiscard]] double mu() const { return mu_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] double capacity() const { return capacity_; }

  /// Full power f(x) of Eq. 1; requires x >= 0.
  [[nodiscard]] double f(double x) const;

  /// Dynamic power g(x) = mu * x^alpha; requires x >= 0.
  [[nodiscard]] double g(double x) const;

  /// Power rate f(x)/x (Definition 3); requires x > 0.
  [[nodiscard]] double power_rate(double x) const;

  /// The power-rate-minimizing operation rate of Lemma 3 (0 when
  /// sigma == 0: with no idle power, slower is always cheaper).
  [[nodiscard]] double r_opt() const;

  /// min(r_opt, capacity): the best achievable operation rate.
  [[nodiscard]] double r_hat() const;

  /// Convex envelope of f at x (>= 0): the tightest convex function
  /// below f on [0, capacity]; linear on [0, r_hat], equal to f beyond.
  [[nodiscard]] double envelope(double x) const;

  /// Derivative of the envelope (subgradient at the kink, right
  /// derivative at 0). Strictly positive for sigma > 0, which keeps the
  /// Frank-Wolfe shortest-path oracle well-posed on idle networks.
  [[nodiscard]] double envelope_derivative(double x) const;

  /// True when 0 <= x <= capacity (+ tolerance).
  [[nodiscard]] bool within_capacity(double x, double tol = 1e-9) const;

  /// Theorem 3: no polynomial algorithm approximates DCFSR better than
  /// 3/2 * (1 + ((2/3)^alpha - 1)/alpha) unless P=NP.
  [[nodiscard]] double inapproximability_bound() const;

 private:
  double sigma_;
  double mu_;
  double alpha_;
  double capacity_;
  double r_hat_;        // cached min(r_opt, capacity)
  double env_slope_;    // f(r_hat)/r_hat, slope of the linear envelope part
};

}  // namespace dcn
