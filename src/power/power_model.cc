#include "power/power_model.h"

#include <cmath>

namespace dcn {

PowerModel::PowerModel(double sigma, double mu, double alpha, double capacity)
    : sigma_(sigma), mu_(mu), alpha_(alpha), capacity_(capacity) {
  DCN_EXPECTS(sigma >= 0.0);
  DCN_EXPECTS(mu > 0.0);
  DCN_EXPECTS(alpha > 1.0);
  DCN_EXPECTS(capacity > 0.0);
  const double ropt = r_opt();
  r_hat_ = std::min(ropt, capacity_);
  // With sigma == 0 the envelope is f itself; represent that with a
  // degenerate (empty) linear part.
  env_slope_ = r_hat_ > 0.0 ? f(r_hat_) / r_hat_ : 0.0;
}

PowerModel PowerModel::pure_speed_scaling(double alpha) {
  return PowerModel(/*sigma=*/0.0, /*mu=*/1.0, alpha);
}

namespace {

/// x^alpha with a fast path for the paper's headline alpha = 2 (the
/// Frank-Wolfe line search evaluates this tens of millions of times per
/// relaxation; std::pow dominates the profile without it).
inline double pow_alpha(double x, double alpha) {
  if (alpha == 2.0) return x * x;
  return std::pow(x, alpha);
}

}  // namespace

double PowerModel::f(double x) const {
  DCN_EXPECTS(x >= 0.0);
  if (x == 0.0) return 0.0;
  return sigma_ + mu_ * pow_alpha(x, alpha_);
}

double PowerModel::g(double x) const {
  DCN_EXPECTS(x >= 0.0);
  return mu_ * pow_alpha(x, alpha_);
}

double PowerModel::power_rate(double x) const {
  DCN_EXPECTS(x > 0.0);
  return f(x) / x;
}

double PowerModel::r_opt() const {
  if (sigma_ == 0.0) return 0.0;
  return std::pow(sigma_ / (mu_ * (alpha_ - 1.0)), 1.0 / alpha_);
}

double PowerModel::r_hat() const { return r_hat_; }

double PowerModel::envelope(double x) const {
  DCN_EXPECTS(x >= 0.0);
  if (x <= r_hat_) return env_slope_ * x;
  return sigma_ + mu_ * pow_alpha(x, alpha_);
}

double PowerModel::envelope_derivative(double x) const {
  DCN_EXPECTS(x >= 0.0);
  if (x <= r_hat_) return env_slope_;
  if (alpha_ == 2.0) return mu_ * alpha_ * x;
  return mu_ * alpha_ * std::pow(x, alpha_ - 1.0);
}

bool PowerModel::within_capacity(double x, double tol) const {
  return x >= 0.0 && x <= capacity_ * (1.0 + tol);
}

double PowerModel::inapproximability_bound() const {
  return 1.5 * (1.0 + (std::pow(2.0 / 3.0, alpha_) - 1.0) / alpha_);
}

}  // namespace dcn
